"""Columnar store wall: round-trip properties, chunk recovery, WAL
tail durability.

The property tests pin the tentpole claim that the columnar backend
is a *lossless* re-encoding of the JSONL checkpoint format: any
record stream — NaN/±inf metrics, per-record metric sets, absent
seeds, nested params — written through either backend reads back
canonical-JSON identical.  The recovery tests mirror the
torn/interior/CRC damage semantics ``test_checkpoint.py`` pins for
JSONL lines, applied to sealed npz chunks, and the WAL-tail tests
pin the kill windows the module docstring enumerates.
"""

import json
import os
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.campaigns.checkpoint import (CampaignStore,
                                        CheckpointCorruptionWarning,
                                        make_record, record_crc,
                                        scan_jsonl)
from repro.campaigns.colstore import (ColumnChunkWriter, ColumnStore,
                                      StreamingSummary, chunk_paths,
                                      read_chunk, scan_chunks,
                                      write_chunk)
from repro.campaigns.matrix import Axis, CampaignMatrix
from repro.campaigns.runner import CampaignRunner
from repro.experiments.api import _canonical_json


def _matrix():
    return CampaignMatrix(name="col", experiment="camp-fast",
                          axes=(Axis("x", (1, 2, 3)),), seed=1)


def _record(i, metrics, seed=7, params=None):
    scenario = SimpleNamespace(
        scenario_id=f"col-{i:04d}", index=i, seed=seed,
        params=params if params is not None else {"x": i})
    return make_record(scenario, metrics, elapsed_s=0.01 * (i + 1))


def _canonical_records(records):
    """Order-independent canonical-JSON view of a record collection."""
    if isinstance(records, dict):
        records = records.values()
    return sorted(_canonical_json(r) for r in records)


# -- property wall ----------------------------------------------------

_METRIC_VALUES = st.floats(allow_nan=True, allow_infinity=True,
                           width=64)
_METRICS = st.dictionaries(
    st.sampled_from(["mbps", "loss", "conv_s", "fair"]),
    _METRIC_VALUES, min_size=1, max_size=4)
_PARAMS = st.fixed_dictionaries({
    "x": st.integers(-1000, 1000),
    "label": st.sampled_from(["a", "b", "longer-label"]),
    "nested": st.lists(st.integers(0, 9), max_size=3),
})
_SEEDS = st.one_of(st.none(), st.integers(0, 2**63 - 1))


class TestRoundTripProperties:
    @settings(max_examples=30, deadline=None)
    @given(rows=st.lists(st.tuples(_METRICS, _SEEDS, _PARAMS),
                         min_size=1, max_size=8))
    def test_chunk_roundtrip_is_bit_exact(self, rows, tmp_path_factory):
        """seal -> load inverts exactly, including NaN vs missing
        metrics, ±inf, absent seeds, and nested params."""
        tmp = tmp_path_factory.mktemp("chunk")
        records = [_record(i, m, seed=s, params=p)
                   for i, (m, s, p) in enumerate(rows)]
        path = str(tmp / "columns-t-00000000.npz")
        write_chunk(path, records)
        loaded = read_chunk(path)
        assert _canonical_records(loaded) == _canonical_records(records)
        # CRC idempotence: the decoded rows re-canonicalize to the
        # same checksum, so a later scan accepts them.
        assert all(record_crc(r) == r["crc"] for r in loaded)

    @settings(max_examples=20, deadline=None)
    @given(rows=st.lists(st.tuples(_METRICS, _SEEDS, _PARAMS),
                         min_size=1, max_size=8),
           chunk_records=st.integers(1, 4))
    def test_backends_read_back_identically(self, rows, chunk_records,
                                            tmp_path_factory):
        """The same stream through RecordWriter and ColumnChunkWriter
        scans back canonical-JSON identical (JSONL <-> columnar)."""
        tmp = tmp_path_factory.mktemp("parity")
        records = [_record(i, m, seed=s, params=p)
                   for i, (m, s, p) in enumerate(rows)]
        jsonl = CampaignStore(_matrix(), cache_dir=str(tmp / "j"))
        col = ColumnStore(_matrix(), cache_dir=str(tmp / "c"),
                          chunk_records=chunk_records)
        for store in (jsonl, col):
            with store.writer("0of1") as out:
                for record in records:
                    out.append(record)
        jsonl_records, jsonl_issues = jsonl.scan()
        col_records, col_issues = col.scan()
        assert jsonl_issues == [] and col_issues == []
        assert _canonical_records(col_records) \
            == _canonical_records(jsonl_records) \
            == _canonical_records(records)


class TestChunkBoundaries:
    @pytest.mark.parametrize("n,chunk_records", [
        (1, 1), (5, 1), (6, 3), (7, 3), (2, 64)])
    def test_seal_counts_and_empty_tail(self, tmp_path, n,
                                        chunk_records):
        store = ColumnStore(_matrix(), cache_dir=str(tmp_path),
                            chunk_records=chunk_records)
        with store.writer("0of1") as out:
            for i in range(n):
                out.append(_record(i, {"m": float(i)}))
        chunks = chunk_paths(store.directory)
        assert len(chunks) == -(-n // chunk_records)    # ceil
        tail = os.path.join(store.directory, "results-0of1.jsonl")
        assert os.path.getsize(tail) == 0
        assert len(store.load_records()) == n

    def test_mid_stream_tail_holds_partial_chunk(self, tmp_path):
        store = ColumnStore(_matrix(), cache_dir=str(tmp_path),
                            chunk_records=3)
        writer = store.writer("0of1")
        writer.__enter__()
        for i in range(5):
            writer.append(_record(i, {"m": float(i)}))
        # 3 sealed + 2 in the WAL tail, visible before any close.
        assert len(chunk_paths(store.directory)) == 1
        tail_records, _ = scan_jsonl(store.directory)
        assert len(tail_records) == 2
        assert len(store.load_records()) == 5
        writer.__exit__(None, None, None)

    def test_chunk_records_validated(self, tmp_path):
        with pytest.raises(ValueError, match="chunk_records"):
            ColumnStore(_matrix(), cache_dir=str(tmp_path),
                        chunk_records=0)
        with pytest.raises(ValueError, match="cannot seal"):
            write_chunk(str(tmp_path / "columns-x-00000000.npz"), [])


class TestWalTailDurability:
    """The three kill windows from the colstore docstring."""

    def test_kill_before_seal_keeps_tail_records(self, tmp_path):
        store = ColumnStore(_matrix(), cache_dir=str(tmp_path),
                            chunk_records=64)
        writer = store.writer("0of1")
        writer.__enter__()
        for i in range(3):
            writer.append(_record(i, {"m": float(i)}))
        # Simulated SIGKILL: no __exit__, no seal — the fsynced tail
        # is the only copy, and the union scan reads it.
        del writer
        assert chunk_paths(store.directory) == []
        records, issues = store.scan()
        assert issues == [] and len(records) == 3

    def test_reopen_seals_leftover_tail(self, tmp_path):
        store = ColumnStore(_matrix(), cache_dir=str(tmp_path),
                            chunk_records=64)
        writer = store.writer("0of1")
        writer.__enter__()
        writer.append(_record(0, {"m": 1.0}))
        del writer                                  # killed
        with store.writer("0of1") as out:           # resumed
            out.append(_record(1, {"m": 2.0}))
        # The orphan sealed into its own chunk on open; the new
        # record sealed on close; nothing left in the tail.
        assert len(chunk_paths(store.directory)) == 2
        records, issues = store.scan()
        assert issues == [] and len(records) == 2

    def test_kill_between_seal_and_truncate_dedupes(self, tmp_path):
        store = ColumnStore(_matrix(), cache_dir=str(tmp_path),
                            chunk_records=2)
        records = [_record(i, {"m": float(i)}) for i in range(2)]
        store.ensure()
        write_chunk(os.path.join(store.directory,
                                 "columns-0of1-00000000.npz"), records)
        # The tail still holds the just-sealed records (the kill
        # landed after os.replace, before os.truncate).
        with open(os.path.join(store.directory,
                               "results-0of1.jsonl"), "w") as fh:
            for record in records:
                fh.write(_canonical_json(record) + "\n")
        loaded, issues = store.scan()
        assert issues == [] and len(loaded) == 2
        assert _canonical_records(loaded) == _canonical_records(records)

    def test_torn_tail_line_dropped_on_reopen(self, tmp_path):
        store = ColumnStore(_matrix(), cache_dir=str(tmp_path),
                            chunk_records=64)
        with store.writer("0of1") as out:
            out.append(_record(0, {"m": 1.0}))
        tail = os.path.join(store.directory, "results-0of1.jsonl")
        with open(tail, "a") as fh:
            fh.write('{"scenario_id": "dead')       # killed mid-write
        with store.writer("0of1") as out:
            out.append(_record(1, {"m": 2.0}))
        records, issues = store.scan()
        assert issues == [] and len(records) == 2
        with open(tail) as fh:
            assert "dead" not in fh.read()


def _write_chunks(tmp_path, n=6, chunk_records=2):
    store = ColumnStore(_matrix(), cache_dir=str(tmp_path),
                        chunk_records=chunk_records)
    with store.writer("0of1") as out:
        for i in range(n):
            out.append(_record(i, {"m": float(i)}))
    return store, chunk_paths(store.directory)


def _corrupt_whole(path):
    size = os.path.getsize(path)
    os.truncate(path, max(size // 2, 1))


class TestChunkDamage:
    """Torn/interior/CRC damage classification for sealed chunks,
    mirroring the JSONL line semantics in ``test_checkpoint.py``."""

    def test_torn_final_chunk_is_silent(self, tmp_path):
        store, chunks = _write_chunks(tmp_path)
        _corrupt_whole(chunks[-1])
        records = store.load_records()          # no warning expected
        assert len(records) == 4
        _, issues = store.scan()
        assert [i.kind for i in issues] == ["torn"]

    def test_interior_chunk_damage_warns(self, tmp_path):
        store, chunks = _write_chunks(tmp_path)
        _corrupt_whole(chunks[0])
        with pytest.warns(CheckpointCorruptionWarning,
                          match=r"\[chunk\]"):
            records = store.load_records()
        assert len(records) == 4

    def test_unknown_schema_is_schema_issue(self, tmp_path):
        store, chunks = _write_chunks(tmp_path, n=2, chunk_records=2)
        rows = read_chunk(chunks[0])
        with np.load(chunks[0]) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["schema"] = np.array(["repro-colstore/999"])
        np.savez(chunks[0], **arrays)
        _, issues = store.scan()
        assert [i.kind for i in issues] == ["schema"]
        assert "repro-colstore/999" in issues[0].detail
        assert rows                                 # was readable

    def test_missing_columns_is_schema_issue(self, tmp_path):
        store, chunks = _write_chunks(tmp_path, n=2, chunk_records=2)
        np.savez(chunks[0], bogus=np.array([1]))
        _, issues = store.scan()
        assert [i.kind for i in issues] == ["schema"]
        assert "missing columns" in issues[0].detail

    def test_row_crc_tamper_detected(self, tmp_path):
        records = [_record(i, {"m": float(i)}) for i in range(3)]
        records[1]["metrics"]["m"] += 1.0       # CRC now stale
        path = str(tmp_path / "columns-0of1-00000000.npz")
        write_chunk(path, records)
        loaded, issues = scan_chunks(str(tmp_path))
        assert [i.kind for i in issues] == ["crc"]
        assert issues[0].line_no == 2           # 1-based row number
        assert [r["index"] for r in loaded] == [0, 2]


class TestStreamingSummary:
    def test_column_and_record_updates_agree(self, tmp_path):
        metrics = [{"a": 1.0, "b": float("nan")},
                   {"a": 3.0, "x_digest": 9.0},
                   {"b": 2.0}]
        records = [_record(i, m) for i, m in enumerate(metrics)]
        path = str(tmp_path / "columns-s-00000000.npz")
        write_chunk(path, records)
        per_record = StreamingSummary()
        for record in read_chunk(path):
            per_record.update(record["metrics"])
        vectorized = StreamingSummary()
        with np.load(path) as data:
            vectorized.update_columns(
                [str(n) for n in data["metric_names"]],
                data["metric_values"], data["metric_present"])
        assert per_record.count == vectorized.count == 3
        assert per_record.aggregates() == vectorized.aggregates() \
            == {"a": 2.0, "b": 2.0}             # NaN and digest skipped

    def test_stream_aggregates_covers_chunks_and_tail(self, tmp_path):
        store = ColumnStore(_matrix(), cache_dir=str(tmp_path),
                            chunk_records=2)
        writer = store.writer("0of1")
        writer.__enter__()
        for i in range(5):                      # 2 chunks + 1 in tail
            writer.append(_record(i, {"m": float(i)}))
        summary = store.stream_aggregates()
        assert summary.count == 5
        assert summary.aggregates() == {"m": 2.0}
        writer.__exit__(None, None, None)


class TestBackendParity:
    def test_columnar_summary_is_byte_identical_to_jsonl(self,
                                                         tmp_path):
        """The PR's core determinism claim at runner level: the
        committed summary is a pure function of record contents, so
        the backend choice cannot change a byte of it."""
        matrix = CampaignMatrix(
            name="parity", experiment="camp-fast",
            axes=(Axis("x", (1, 2, 3)), Axis("y", (0.5, 1.5))),
            seed=9)
        payloads = []
        for sub, store_kind in (("j", "jsonl"), ("c", "columnar")):
            runner = CampaignRunner(cache_dir=str(tmp_path / sub),
                                    store=store_kind, chunk_records=2)
            assert runner.run(matrix).done
            runner.report(matrix)
            store = CampaignStore(matrix,
                                  cache_dir=str(tmp_path / sub))
            with open(store.summary_path, "rb") as fh:
                payloads.append(fh.read())
        assert payloads[0] == payloads[1]
        assert json.loads(payloads[0])["completed"] == 6

    def test_jsonl_run_resumes_under_columnar_store(self, tmp_path):
        """Switching backends mid-campaign is safe: the union scan
        treats existing JSONL records as done work."""
        matrix = _matrix()
        first = CampaignRunner(cache_dir=str(tmp_path))
        assert first.run(matrix, limit=2).completed == 2
        progress = []
        resumed = CampaignRunner(cache_dir=str(tmp_path),
                                 store="columnar", chunk_records=2,
                                 progress=progress.append)
        status = resumed.run(matrix)
        assert status.done
        assert "1 to run" in progress[0], \
            f"resume recomputed checkpointed work: {progress[0]!r}"
        records, issues = ColumnStore(
            matrix, cache_dir=str(tmp_path)).scan()
        assert issues == [] and len(records) == 3
