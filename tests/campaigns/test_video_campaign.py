"""Video campaign family: registry shape and kill-and-resume
determinism of ``video-matrix`` under ``--limit``.

Mirrors ``test_resume_kill.py``: a limited ``video-matrix`` run in a
subprocess is SIGKILLed mid-run, resumed in-process to the same limit,
and its per-scenario metric records are asserted identical to an
uninterrupted limited run in a pristine cache directory.
"""

import os
import signal
import subprocess
import sys
import time

from repro.campaigns import CampaignRunner, CampaignStore, get_campaign

_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
_LIMIT = 6


def test_video_campaigns_are_registered():
    smoke = get_campaign("video-smoke")
    matrix = get_campaign("video-matrix")
    assert smoke.experiment == "video"
    assert matrix.experiment == "video"
    assert smoke.total_scenarios() == 8
    assert matrix.total_scenarios() == 72


def _spawn_limited(cache_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "run",
         "video-matrix", "--cache-dir", str(cache_dir),
         "--limit", str(_LIMIT)],
        cwd=_ROOT, env=env, stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL)


def _metric_records(store):
    """scenario_id -> metrics, dropping nondeterministic timing."""
    return {sid: rec["metrics"]
            for sid, rec in store.load_records().items()}


def test_sigkill_then_resume_matches_pristine_limited_run(tmp_path):
    matrix = get_campaign("video-matrix")
    interrupted = tmp_path / "interrupted"
    pristine = tmp_path / "pristine"

    store = CampaignStore(matrix, cache_dir=str(interrupted))
    proc = _spawn_limited(interrupted)
    try:
        deadline = time.time() + 120.0
        while time.time() < deadline:
            if proc.poll() is not None:
                break                       # finished before the kill
            if store.completed_ids():
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=30)
                break
            time.sleep(0.02)
        else:
            raise AssertionError("campaign made no progress in 120 s")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    survived = len(store.completed_ids())
    assert survived >= 1, "no checkpoint survived the kill"

    # Resume in-process up to the same limit: pending scenarios keep
    # matrix order, so the union is exactly the first _LIMIT cells.
    runner = CampaignRunner(cache_dir=str(interrupted))
    runner.run(matrix, limit=max(_LIMIT - survived, 0))

    reference = CampaignRunner(cache_dir=str(pristine))
    reference.run(matrix, limit=_LIMIT)

    resumed = _metric_records(
        CampaignStore(matrix, cache_dir=str(interrupted)))
    expected = _metric_records(
        CampaignStore(matrix, cache_dir=str(pristine)))
    assert len(resumed) >= _LIMIT
    assert resumed == expected, \
        "resumed video-matrix records differ from uninterrupted run"
