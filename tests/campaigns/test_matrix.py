"""Matrix expansion: validation units + hypothesis property wall.

The properties the campaign engine's correctness rests on:

* expansion is a pure function of the matrix (stable ordering),
* scenario identities (cache keys) are unique and insensitive to the
  order axes were declared in,
* derived seeds are unique per scenario and independent of execution
  schedule.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaigns.matrix import (Axis, CampaignError,
                                    CampaignMatrix, RandomAxis,
                                    derive_scenario_seed)
from repro.experiments.api import UnknownParameterError

# ------------------------------------------------------------------
# Unit validation
# ------------------------------------------------------------------


class TestAxisValidation:
    def test_empty_values_rejected(self):
        with pytest.raises(CampaignError, match="no values"):
            Axis("a", ())

    def test_duplicate_values_rejected(self):
        with pytest.raises(CampaignError, match="repeats"):
            Axis("a", (1, 2, 1))

    def test_int_and_float_values_are_distinct(self):
        # 1 and 1.0 canonicalize differently, so both may appear.
        axis = Axis("a", (1, 1.0))
        assert len(axis.values) == 2

    def test_random_axis_bounds(self):
        with pytest.raises(CampaignError, match="high > low"):
            RandomAxis("a", 2.0, 2.0)
        with pytest.raises(CampaignError, match="log"):
            RandomAxis("a", 0.0, 1.0, log=True)

    def test_random_axis_draws_in_range_and_deterministic(self):
        axis = RandomAxis("snr", 6.0, 24.0)
        draws = [axis.draw(7, i) for i in range(50)]
        assert all(6.0 <= v <= 24.0 for v in draws)
        assert draws == [axis.draw(7, i) for i in range(50)]
        assert len(set(draws)) > 40      # actually spread out

    def test_random_axis_integer_and_log(self):
        ints = RandomAxis("n", 1, 50, integer=True)
        values = {ints.draw(3, i) for i in range(80)}
        assert all(isinstance(v, int) for v in values)
        assert all(1 <= v <= 50 for v in values)
        logs = RandomAxis("x", 1e-3, 1.0, log=True)
        draws = [logs.draw(3, i) for i in range(200)]
        assert all(1e-3 <= v <= 1.0 for v in draws)
        # Log sampling: about half the draws below the geometric mean.
        below = sum(1 for v in draws if v < 10 ** -1.5)
        assert 0.3 < below / len(draws) < 0.7


class TestMatrixValidation:
    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(CampaignError, match="duplicate"):
            CampaignMatrix(name="m", experiment="camp-prop",
                           axes=(Axis("a", (1,)), Axis("a", (2,))))

    def test_axis_also_in_base_rejected(self):
        with pytest.raises(CampaignError, match="pinned in base"):
            CampaignMatrix(name="m", experiment="camp-prop",
                           axes=(Axis("a", (1,)),), base={"a": 2})

    def test_samples_without_random_axes_rejected(self):
        with pytest.raises(CampaignError, match="no random axes"):
            CampaignMatrix(name="m", experiment="camp-prop",
                           samples=4)

    def test_random_axes_without_samples_rejected(self):
        with pytest.raises(CampaignError, match="samples"):
            CampaignMatrix(name="m", experiment="camp-prop",
                           random_axes=(RandomAxis("a", 0.0, 1.0),))

    def test_unknown_axis_parameter_rejected_at_expand(self):
        matrix = CampaignMatrix(name="m", experiment="camp-prop",
                                axes=(Axis("bogus", (1, 2)),))
        with pytest.raises(UnknownParameterError, match="bogus"):
            matrix.expand()

    def test_replicates_must_be_positive(self):
        with pytest.raises(CampaignError, match="replicates"):
            CampaignMatrix(name="m", experiment="camp-prop",
                           replicates=0)

    def test_replicates_with_pinned_seed_rejected(self):
        """Replicates only vary the derived seed; pinning the seed
        would silently repeat identical simulations N times."""
        matrix = CampaignMatrix(name="m", experiment="camp-prop",
                                axes=(Axis("a", (1, 2)),),
                                base={"seed": 7}, replicates=3)
        with pytest.raises(CampaignError, match="pinned"):
            matrix.expand()
        as_axis = CampaignMatrix(name="m", experiment="camp-prop",
                                 axes=(Axis("seed", (1, 2)),),
                                 replicates=3)
        with pytest.raises(CampaignError, match="pinned"):
            as_axis.expand()


class TestExpansionBasics:
    def test_varied_parameters_sorted_with_replicate(self):
        matrix = CampaignMatrix(
            name="m", experiment="camp-prop",
            axes=(Axis("b", (1,)), Axis("a", (1,))),
            random_axes=(RandomAxis("c", 0.0, 1.0),), samples=2,
            replicates=2)
        assert matrix.varied_parameters() == ["a", "b", "c",
                                             "replicate"]

    def test_total_matches_expansion(self):
        matrix = CampaignMatrix(
            name="m", experiment="camp-prop",
            axes=(Axis("a", (1, 2, 3)), Axis("b", (0, 1))),
            random_axes=(RandomAxis("c", 0.0, 1.0),), samples=2,
            replicates=2)
        scenarios = matrix.expand()
        assert len(scenarios) == matrix.total_scenarios() == 24
        assert [s.index for s in scenarios] == list(range(24))

    def test_pinned_seed_suppresses_derivation(self):
        matrix = CampaignMatrix(name="m", experiment="camp-prop",
                                axes=(Axis("a", (1, 2)),),
                                base={"seed": 99})
        scenarios = matrix.expand()
        assert all(s.seed is None for s in scenarios)
        assert all(s.params["seed"] == 99 for s in scenarios)

    def test_derived_seed_written_into_params(self):
        matrix = CampaignMatrix(name="m", experiment="camp-prop",
                                axes=(Axis("a", (1, 2)),), seed=5)
        for scenario in matrix.expand():
            assert scenario.params["seed"] == scenario.seed

    def test_campaign_seed_changes_scenario_seeds(self):
        def seeds(campaign_seed):
            return [s.seed for s in CampaignMatrix(
                name="m", experiment="camp-prop",
                axes=(Axis("a", (1, 2)),),
                seed=campaign_seed).expand()]
        assert seeds(1) != seeds(2)

    def test_derive_scenario_seed_is_stable(self):
        assert derive_scenario_seed(1, "k") == \
            derive_scenario_seed(1, "k")
        assert derive_scenario_seed(1, "k") != \
            derive_scenario_seed(2, "k")

    def test_colliding_integer_draws_become_replicates(self):
        """An integer random axis over a narrow range collides almost
        surely at realistic sample counts; colliding draws must act
        like replicates (distinct seeds), not abort the expansion."""
        matrix = CampaignMatrix(
            name="m", experiment="camp-prop",
            random_axes=(RandomAxis("a", 1, 4, integer=True),),
            samples=40, seed=5)
        scenarios = matrix.expand()
        assert len(scenarios) == 40
        values = [s.params["a"] for s in scenarios]
        assert len(set(values)) < 40      # collisions did happen
        seeds = [s.seed for s in scenarios]
        assert len(set(seeds)) == 40


# ------------------------------------------------------------------
# Property wall (hypothesis)
# ------------------------------------------------------------------

_AXIS_NAMES = ("a", "b", "c", "d")


@st.composite
def matrices(draw):
    """A random valid matrix over the camp-prop parameter space."""
    n_axes = draw(st.integers(1, 3))
    names = draw(st.permutations(_AXIS_NAMES))[:n_axes]
    axes = tuple(
        Axis(name, tuple(draw(st.lists(st.integers(-50, 50),
                                       min_size=1, max_size=4,
                                       unique=True))))
        for name in names)
    remaining = [n for n in _AXIS_NAMES if n not in names]
    random_axes = ()
    samples = 0
    if remaining and draw(st.booleans()):
        random_axes = (RandomAxis(remaining[0], 0.0, 100.0),)
        samples = draw(st.integers(1, 3))
    return CampaignMatrix(
        name="prop", experiment="camp-prop", axes=axes,
        random_axes=random_axes, samples=samples,
        replicates=draw(st.integers(1, 3)),
        seed=draw(st.integers(0, 2 ** 16)))


@settings(max_examples=40, deadline=None)
@given(matrix=matrices())
def test_expansion_is_stable_and_duplicate_free(matrix):
    scenarios = matrix.expand()
    assert len(scenarios) == matrix.total_scenarios()
    ids = [s.scenario_id for s in scenarios]
    assert len(set(ids)) == len(ids), "duplicate scenario identities"
    assert scenarios == matrix.expand(), "expansion not stable"


@settings(max_examples=40, deadline=None)
@given(matrix=matrices())
def test_derived_seeds_unique_per_scenario(matrix):
    seeds = [s.seed for s in matrix.expand()]
    assert None not in seeds
    assert len(set(seeds)) == len(seeds)


@settings(max_examples=40, deadline=None)
@given(matrix=matrices(), data=st.data())
def test_axis_declaration_order_is_irrelevant(matrix, data):
    """Reordering axis declarations changes neither the digest, nor
    the expansion order, nor any scenario's cache key or seed."""
    shuffled = CampaignMatrix(
        name=matrix.name, experiment=matrix.experiment,
        axes=tuple(data.draw(st.permutations(matrix.axes))),
        random_axes=matrix.random_axes, samples=matrix.samples,
        base=matrix.base, replicates=matrix.replicates,
        seed=matrix.seed)
    assert shuffled.digest() == matrix.digest()
    assert shuffled.expand() == matrix.expand()


@settings(max_examples=25, deadline=None)
@given(matrix=matrices())
def test_scenario_params_complete_and_validated(matrix):
    """Every scenario carries the full merged parameterization."""
    from repro.experiments.api import get_experiment

    declared = set(get_experiment("camp-prop").params)
    for scenario in matrix.expand():
        assert set(scenario.params) == declared
