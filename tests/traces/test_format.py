"""Tests for the LinkTrace container."""

import numpy as np
import pytest

from repro.traces.format import LinkTrace


def _trace(n_rates=3, n_slots=10, slot=5e-3, loss_prob=None):
    rng = np.random.default_rng(0)
    delivered = rng.random((n_rates, n_slots)) > 0.3
    return LinkTrace(
        slot_duration=slot,
        snr_db=np.linspace(20, 5, n_slots),
        detected=np.ones(n_slots, dtype=bool),
        ber_true=rng.uniform(1e-6, 1e-2, (n_rates, n_slots)),
        ber_est=rng.uniform(1e-6, 1e-2, (n_rates, n_slots)),
        delivered=delivered,
        loss_prob=loss_prob,
        rate_names=[f"r{i}" for i in range(n_rates)])


class TestConstruction:
    def test_shapes_validated(self):
        with pytest.raises(ValueError):
            LinkTrace(slot_duration=1e-3, snr_db=np.zeros(5),
                      detected=np.ones(4, dtype=bool),
                      ber_true=np.zeros((2, 5)), ber_est=np.zeros((2, 5)),
                      delivered=np.zeros((2, 5), dtype=bool))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LinkTrace(slot_duration=1e-3, snr_db=np.zeros(0),
                      detected=np.ones(0, dtype=bool),
                      ber_true=np.zeros((2, 0)), ber_est=np.zeros((2, 0)),
                      delivered=np.zeros((2, 0), dtype=bool))

    def test_loss_prob_range_validated(self):
        with pytest.raises(ValueError):
            _trace(loss_prob=np.full((3, 10), 1.5))

    def test_default_loss_prob_from_delivered(self):
        trace = _trace()
        assert np.array_equal(trace.loss_prob,
                              1.0 - trace.delivered.astype(float))


class TestLookup:
    def test_slot_at(self):
        trace = _trace()
        assert trace.slot_at(0.0) == 0
        assert trace.slot_at(0.012) == 2

    def test_wraparound(self):
        trace = _trace(n_slots=10, slot=5e-3)    # 50 ms trace
        assert trace.slot_at(0.051) == trace.slot_at(0.001)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            _trace().slot_at(-1.0)

    def test_observe_rate_range(self):
        with pytest.raises(ValueError):
            _trace(n_rates=3).observe(0.0, 3)

    def test_degenerate_outcomes_deterministic(self):
        trace = _trace()     # loss probs are all 0 or 1
        for t in (0.0, 0.007, 0.021):
            for r in range(trace.n_rates):
                obs = trace.observe(t, r)
                slot = trace.slot_at(t)
                assert obs.delivered == bool(trace.delivered[r, slot])

    def test_fractional_loss_resampled_per_time(self):
        # Two attempts in the same slot at different instants must be
        # able to differ (retransmissions are not doomed).
        trace = _trace(loss_prob=np.full((3, 10), 0.5))
        outcomes = {trace.observe(1e-4 * k, 0).delivered
                    for k in range(40)}
        assert outcomes == {True, False}

    def test_observation_reproducible(self):
        trace = _trace(loss_prob=np.full((3, 10), 0.5))
        a = trace.observe(0.00123, 1)
        b = trace.observe(0.00123, 1)
        assert a == b

    def test_undetected_slot_never_delivers(self):
        trace = _trace()
        trace.detected[:] = False
        obs = trace.observe(0.0, 0)
        assert not obs.detected and not obs.delivered


class TestBestRate:
    def test_highest_delivered(self):
        trace = _trace()
        trace.delivered[:, 0] = [True, False, True]
        assert trace.best_rate_at(0.0) == 2

    def test_none_when_all_fail(self):
        trace = _trace()
        trace.delivered[:, 0] = False
        assert trace.best_rate_at(0.0) is None


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        trace = _trace(loss_prob=np.full((3, 10), 0.25))
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = LinkTrace.load(path)
        assert loaded.slot_duration == trace.slot_duration
        assert np.array_equal(loaded.delivered, trace.delivered)
        assert np.allclose(loaded.ber_true, trace.ber_true)
        assert np.allclose(loaded.loss_prob, trace.loss_prob)
        assert loaded.rate_names == trace.rate_names


class TestTrueSnrColumn:
    """The optional true-SNR channel-state column (PHY backends)."""

    def test_roundtrips_through_npz(self, tmp_path):
        trace = _trace()
        trace.true_snr_db = np.linspace(18.0, 6.0, trace.n_slots)
        path = str(tmp_path / "t.npz")
        trace.save(path)
        loaded = LinkTrace.load(path)
        assert np.allclose(loaded.true_snr_db, trace.true_snr_db)

    def test_absent_column_loads_as_none(self, tmp_path):
        trace = _trace()
        assert trace.true_snr_db is None
        path = str(tmp_path / "t.npz")
        trace.save(path)
        assert LinkTrace.load(path).true_snr_db is None

    def test_shape_validated(self):
        with pytest.raises(ValueError, match="true_snr_db"):
            LinkTrace(
                slot_duration=5e-3,
                snr_db=np.zeros(4),
                detected=np.ones(4, dtype=bool),
                ber_true=np.zeros((2, 4)),
                ber_est=np.zeros((2, 4)),
                delivered=np.ones((2, 4), dtype=bool),
                true_snr_db=np.zeros(3))

    def test_generated_fading_trace_records_true_snr(self):
        from repro.traces.generate import generate_fading_trace

        trace = generate_fading_trace(np.random.default_rng(0),
                                      duration=0.05)
        assert trace.true_snr_db is not None
        assert trace.true_snr_db.shape == trace.snr_db.shape
        # The estimate is the true SNR plus zero-mean noise.
        err = trace.snr_db - trace.true_snr_db
        assert np.std(err) > 0.1
