"""Tests for synthetic traces."""

import numpy as np
import pytest

from repro.traces.synthetic import alternating_trace, constant_trace


class TestConstantTrace:
    def test_best_rate_everywhere(self):
        trace = constant_trace(best_rate=3, duration=1.0)
        for t in (0.0, 0.3, 0.9):
            assert trace.best_rate_at(t) == 3

    def test_delivery_structure(self):
        trace = constant_trace(best_rate=2, duration=0.5)
        assert trace.delivered[:3].all()
        assert not trace.delivered[3:].any()

    def test_ber_monotone(self):
        trace = constant_trace(best_rate=3, duration=0.1)
        col = trace.ber_true[:, 0]
        assert np.all(np.diff(col) > 0)

    def test_range_validated(self):
        with pytest.raises(ValueError):
            constant_trace(best_rate=10)


class TestAlternatingTrace:
    def test_starts_bad_then_toggles(self):
        trace = alternating_trace(good_rate=5, bad_rate=4, period=1.0,
                                  duration=4.0)
        assert trace.best_rate_at(0.5) == 4      # bad first
        assert trace.best_rate_at(1.5) == 5
        assert trace.best_rate_at(2.5) == 4
        assert trace.best_rate_at(3.5) == 5

    def test_snr_follows_state(self):
        trace = alternating_trace(period=1.0, duration=2.0,
                                  good_snr_db=25.0, bad_snr_db=20.0)
        assert trace.observe(0.5, 0).snr_db == 20.0
        assert trace.observe(1.5, 0).snr_db == 25.0

    def test_validation(self):
        with pytest.raises(ValueError):
            alternating_trace(period=0.0)
        with pytest.raises(ValueError):
            alternating_trace(good_rate=9)
