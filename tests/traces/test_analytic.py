"""Tests for the analytic PHY model — including validation against the
bit-exact pipeline, which is what justifies using the model for
network-scale trace generation."""

import numpy as np
import pytest

from repro.channel.awgn import apply_channel
from repro.phy.rates import RATE_TABLE
from repro.phy.snr import db_to_linear
from repro.phy.transceiver import Transceiver
from repro.traces.analytic import (coded_ber, frame_ber,
                                   frame_loss_probability, uncoded_ber)

RATES = RATE_TABLE.prototype_subset()


class TestUncodedBer:
    def test_bpsk_known_value(self):
        # Q(sqrt(2 * 10^(9.6/10))) ~ 1e-5 for BPSK at ~9.6 dB.
        ber = uncoded_ber("BPSK", db_to_linear(9.6))
        assert 3e-6 < ber < 3e-5

    def test_monotone_in_snr(self):
        snrs = np.linspace(0.1, 100, 50)
        for mod in ("BPSK", "QPSK", "QAM16", "QAM64"):
            bers = uncoded_ber(mod, snrs)
            assert np.all(np.diff(bers) < 0)

    def test_ordering_across_modulations(self):
        snr = db_to_linear(10.0)
        assert uncoded_ber("BPSK", snr) < uncoded_ber("QPSK", snr) \
            < uncoded_ber("QAM16", snr) < uncoded_ber("QAM64", snr)

    def test_unknown_modulation_rejected(self):
        with pytest.raises(ValueError):
            uncoded_ber("QAM1024", 1.0)


class TestCodedBer:
    def test_coding_gain(self):
        # In the waterfall region the coded BER must be far below the
        # uncoded BER (that's what the code is for).
        rate = RATES[0]      # BPSK 1/2
        snr = db_to_linear(4.0)
        assert coded_ber(rate, snr) < uncoded_ber("BPSK", snr) / 10

    def test_monotone_in_rate_index(self):
        snr = db_to_linear(9.0)
        bers = [coded_ber(r, snr) for r in RATES]
        assert all(a <= b * (1 + 1e-12) for a, b in zip(bers, bers[1:]))

    def test_separation_at_least_tenfold(self):
        # Observation 2 of section 3.3, in the usable BER band.  The
        # (BPSK 3/4, QPSK 1/2) pair is the known near-degenerate one —
        # 9 vs 12 Mbps with nearly identical error performance — which
        # is why the paper allows "picking a subset of rates with the
        # property"; we skip that pair.
        for snr_db in np.arange(2.0, 16.0, 0.5):
            snr = db_to_linear(snr_db)
            bers = [float(coded_ber(r, snr)) for r in RATES]
            for i, (low, high) in enumerate(zip(bers, bers[1:])):
                if i == 1:
                    continue
                if 1e-7 < high < 1e-2 and low > 1e-12:
                    assert high / max(low, 1e-300) > 5.0, (i, snr_db)

    def test_saturates_at_half(self):
        assert coded_ber(RATES[5], db_to_linear(-20.0)) == 0.5


class TestFrameLoss:
    def test_loss_increases_with_frame_size(self):
        snrs = np.array([db_to_linear(5.2)])
        small = frame_loss_probability(RATES[3], snrs, 1000)
        large = frame_loss_probability(RATES[3], snrs, 10000)
        assert 0 < small < large < 1

    def test_fade_dominates(self):
        # One deeply faded symbol among many clean ones sinks the frame.
        clean = np.full(31, db_to_linear(20.0))
        faded = np.concatenate([clean, [db_to_linear(-3.0)]])
        assert frame_loss_probability(RATES[3], clean, 8000) < 0.01
        assert frame_loss_probability(RATES[3], faded, 8000) > 0.9

    def test_frame_ber_averages_symbols(self):
        snrs = np.array([db_to_linear(0.0), db_to_linear(30.0)])
        per_symbol = coded_ber(RATES[3], snrs)
        assert frame_ber(RATES[3], snrs) == pytest.approx(
            float(np.mean(per_symbol)))


@pytest.mark.slow
class TestAgainstFullPhy:
    def test_waterfall_matches_measured(self):
        """The analytic curve must track the bit-exact PHY within a
        small factor in the measurable BER range, for every rate."""
        rng = np.random.default_rng(42)
        phy = Transceiver()
        payload = rng.integers(0, 2, 1600).astype(np.uint8)
        checked = 0
        for rate_index, rate in enumerate(RATES):
            tx = phy.transmit(payload, rate_index=rate_index)
            for snr_db in np.arange(0.0, 16.0, 1.0):
                model = float(coded_ber(rate, db_to_linear(snr_db)))
                if not 3e-4 < model < 0.2:
                    continue
                measured = []
                for _ in range(6):
                    gains = np.ones(tx.layout.n_symbols, dtype=complex)
                    rx_sym, g = apply_channel(
                        tx.symbols, gains, db_to_linear(-snr_db), rng)
                    rx = phy.receive(rx_sym, g, tx.layout, tx_frame=tx)
                    measured.append(rx.true_ber)
                mean = np.mean(measured)
                if mean == 0:
                    continue
                assert 0.1 < model / mean < 10.0, \
                    f"{rate.name} at {snr_db} dB: model {model}, " \
                    f"measured {mean}"
                checked += 1
        assert checked >= 6
