"""The GoP video workload: generator, persistence, reference trace."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.traces.video import (VideoTrace, generate_video_trace,
                                load_video_trace, reference_video_trace,
                                save_video_trace)


@settings(max_examples=25, deadline=None)
@given(duration=st.floats(0.2, 3.0), fps=st.sampled_from((24.0, 30.0)),
       gop=st.integers(1, 20), seed=st.integers(0, 2**16))
def test_generated_trace_structure(duration, fps, gop, seed):
    trace = generate_video_trace(duration=duration, fps=fps, gop=gop,
                                 seed=seed)
    assert trace.n_frames == max(int(round(duration * fps)), 1)
    for f in trace.frames:
        assert f.kind == ("I" if f.index % gop == 0 else "P")
        assert f.size_bits % 8 == 0 and f.size_bits >= 256
        assert f.deadline == pytest.approx(
            trace.startup_delay + (f.index + 1) / fps)
    deadlines = [f.deadline for f in trace.frames]
    assert deadlines == sorted(deadlines)


def test_generated_trace_hits_target_bitrate():
    trace = generate_video_trace(duration=8.0, fps=30.0, gop=15,
                                 mean_bitrate_bps=4.8e5, seed=4)
    assert trace.mean_bitrate_bps == pytest.approx(4.8e5, rel=0.25)
    i_sizes = [f.size_bits for f in trace.frames if f.kind == "I"]
    p_sizes = [f.size_bits for f in trace.frames if f.kind == "P"]
    assert np.mean(i_sizes) > 3.0 * np.mean(p_sizes)


def test_generator_is_deterministic_and_seed_sensitive():
    a = generate_video_trace(seed=9)
    b = generate_video_trace(seed=9)
    c = generate_video_trace(seed=10)
    assert a == b
    assert a != c


def test_generator_validates_arguments():
    with pytest.raises(ValueError):
        generate_video_trace(gop=0)
    with pytest.raises(ValueError):
        generate_video_trace(duration=-1.0)
    with pytest.raises(ValueError):
        generate_video_trace(fps=0.0)


def test_save_load_roundtrip(tmp_path):
    trace = generate_video_trace(duration=1.0, seed=3)
    path = tmp_path / "trace.json"
    save_video_trace(trace, str(path))
    assert load_video_trace(str(path)) == trace


def test_load_rejects_foreign_json(tmp_path):
    path = tmp_path / "bogus.json"
    path.write_text('{"format": "something-else"}')
    with pytest.raises(ValueError):
        load_video_trace(str(path))


def test_reference_trace_matches_its_generator():
    """The checked-in reference is exactly
    ``generate_video_trace(seed=2009)`` — regenerating must not move
    the goldens."""
    ref = reference_video_trace()
    assert isinstance(ref, VideoTrace)
    assert ref.n_frames == 120
    assert ref.fps == 30.0 and ref.gop == 15
    regen = generate_video_trace(duration=4.0, fps=30.0, gop=15,
                                 mean_bitrate_bps=4.8e5, seed=2009)
    assert ref == regen
