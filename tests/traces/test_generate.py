"""Tests for trace generation (analytic and full-PHY paths)."""

import numpy as np
import pytest

from repro.channel.mobility import WalkingTrajectory
from repro.traces.generate import (generate_fading_trace,
                                   generate_full_phy_trace)


class TestFadingTrace:
    @pytest.fixture(scope="class")
    def walking(self):
        rng = np.random.default_rng(1)
        trajectory = WalkingTrajectory(rng, start_distance=5.0)
        return generate_fading_trace(rng, duration=5.0,
                                     mean_snr_db=trajectory.mean_snr_db,
                                     doppler_hz=40.0)

    def test_dimensions(self, walking):
        assert walking.n_rates == 6
        assert walking.n_slots == 1000
        assert walking.duration == pytest.approx(5.0)

    def test_delivery_monotone_in_rate(self, walking):
        # Averaged over the trace, lower rates must deliver at least
        # as often as higher rates (observation 1 of section 3.3).
        fractions = walking.delivered.mean(axis=1)
        for low, high in zip(fractions, fractions[1:]):
            assert low >= high - 0.05

    def test_ber_monotone_in_rate(self, walking):
        # Per slot, BER should be non-decreasing in rate index up to
        # estimation jitter.  The paper measures exactly this on its
        # testbed: "the BER across the various bit rates is monotonic
        # in 96% of such 5 ms cycles" (section 6.1); our traces land
        # at the same fraction.
        diffs = np.diff(walking.ber_true, axis=0)
        assert (diffs >= -1e-15).mean() > 0.93

    def test_walking_away_degrades(self, walking):
        # Later half of the trace (farther away) delivers less at the
        # top rate.
        top = walking.delivered[-1]
        half = top.size // 2
        assert top[half:].mean() < top[:half].mean()

    def test_ber_estimate_tracks_truth(self, walking):
        mask = walking.ber_true[3] > 1e-6
        est = walking.ber_est[3][mask]
        true = walking.ber_true[3][mask]
        err = np.abs(np.log10(est) - np.log10(true))
        assert np.median(err) < 0.3

    def test_loss_prob_consistent_with_ber(self, walking):
        # Slots with tiny BER must have tiny loss probability.
        clean = walking.ber_true[0] < 1e-9
        assert walking.loss_prob[0][clean].max() < 0.05

    def test_deep_fades_cause_silent_slots(self, walking):
        assert 0.0 < 1.0 - walking.detected.mean() < 0.5

    def test_duration_validated(self):
        with pytest.raises(ValueError):
            generate_fading_trace(np.random.default_rng(0), duration=0.0)


class TestConsistencyAcrossRates:
    def test_same_fading_for_all_rates(self):
        # The paper requires channel consistency across rates within a
        # snapshot: in a slot where the top rate delivers, all lower
        # rates must deliver too (monotonicity of the same channel).
        rng = np.random.default_rng(3)
        trace = generate_fading_trace(rng, duration=3.0,
                                      mean_snr_db=lambda t: 14.0,
                                      doppler_hz=40.0)
        top_ok = trace.loss_prob[-1] < 0.01
        for r in range(trace.n_rates - 1):
            assert (trace.loss_prob[r][top_ok] < 0.1).all()


@pytest.mark.slow
class TestFullPhyTrace:
    def test_generates_and_matches_analytic_shape(self):
        rng = np.random.default_rng(4)
        trace = generate_full_phy_trace(rng, n_slots=8,
                                        mean_snr_db=lambda t: 10.0,
                                        doppler_hz=40.0,
                                        payload_bits=800)
        assert trace.n_slots == 8
        # At 10 dB the low rates deliver nearly always, the top rate
        # struggles.
        assert trace.delivered[0].mean() >= 0.5
        assert trace.delivered[0].mean() >= trace.delivered[-1].mean()
