"""Unit tests for the pluggable PHY backends and their calibration."""

import numpy as np
import pytest

from repro.phy.backend import (BACKEND_NAMES, DETECTION_SNR_DB,
                               FullPhyBackend, PhyBackend,
                               SurrogatePhyBackend, UnknownBackendError,
                               get_backend)
from repro.phy.calibrate import TABLE_VERSION, CalibrationTable
from repro.phy.calibration import default_table
from repro.phy.rates import RATE_TABLE


class TestGetBackend:
    def test_resolves_full(self):
        backend = get_backend("full")
        assert isinstance(backend, FullPhyBackend)
        assert backend.name == "full"

    def test_resolves_surrogate(self):
        backend = get_backend("surrogate")
        assert isinstance(backend, SurrogatePhyBackend)
        assert backend.name == "surrogate"

    def test_instance_passes_through(self):
        backend = SurrogatePhyBackend(default_table())
        assert get_backend(backend) is backend

    def test_unknown_name_lists_choices(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            get_backend("bogus")
        message = str(excinfo.value)
        for name in BACKEND_NAMES:
            assert name in message

    def test_unknown_backend_error_is_value_error(self):
        # CLI error handling catches ValueError; keep the hierarchy.
        assert issubclass(UnknownBackendError, ValueError)


class TestFullBackend:
    def test_high_snr_delivers_clean(self):
        backend = FullPhyBackend()
        out = backend.frame_outcome(0, np.array([20.0]), 256,
                                    np.random.default_rng(0))
        assert out.detected and out.delivered
        assert out.n_bit_errors == 0 and out.ber_true == 0.0
        assert out.ber_est < 1e-6
        assert out.n_info_bits == 256 + 32
        assert out.hints is not None and out.hints.size == 288

    def test_low_snr_loses_frame_with_errors(self):
        backend = FullPhyBackend()
        out = backend.frame_outcome(5, np.array([2.0]), 256,
                                    np.random.default_rng(0))
        assert not out.delivered
        assert out.n_bit_errors > 0
        assert out.ber_est > 1e-3

    def test_undetectable_snr_is_silent(self):
        backend = FullPhyBackend()
        out = backend.frame_outcome(0, np.array([-10.0]), 256,
                                    np.random.default_rng(0),
                                    need_hints=False)
        assert not out.detected and not out.delivered

    def test_interference_mask_corrupts_frame(self):
        backend = FullPhyBackend()
        rng = np.random.default_rng(1)
        mask = np.zeros(16, dtype=bool)
        mask[8:] = True
        out = backend.frame_outcome(3, np.full(16, 20.0), 256, rng,
                                    interference_mask=mask)
        assert not out.delivered and out.n_bit_errors > 0

    def test_payload_cache_is_deterministic(self):
        a = FullPhyBackend().frame_outcome(
            2, np.array([9.0]), 256, np.random.default_rng(7))
        b = FullPhyBackend().frame_outcome(
            2, np.array([9.0]), 256, np.random.default_rng(7))
        assert a.ber_true == b.ber_true
        assert a.snr_db == b.snr_db


class TestSurrogateBackend:
    def test_high_snr_delivers_clean(self):
        backend = SurrogatePhyBackend(default_table())
        out = backend.frame_outcome(3, np.full(8, 20.0), 1600,
                                    np.random.default_rng(0))
        assert out.delivered and out.ber_true == 0.0
        assert out.ber_est < 1e-6
        assert out.hints is not None and out.hints.size == 1632

    def test_low_snr_loses_frames(self):
        backend = SurrogatePhyBackend(default_table())
        rng = np.random.default_rng(0)
        outs = [backend.frame_outcome(5, np.full(8, 4.0), 1600, rng)
                for _ in range(10)]
        assert not any(o.delivered for o in outs)
        assert all(o.ber_est > 1e-3 for o in outs)

    def test_undetectable_snr_is_silent(self):
        backend = SurrogatePhyBackend(default_table())
        out = backend.frame_outcome(
            0, np.array([DETECTION_SNR_DB - 3.0]), 400,
            np.random.default_rng(0), need_hints=False)
        assert not out.detected and not out.delivered

    def test_need_hints_false_skips_array(self):
        backend = SurrogatePhyBackend(default_table())
        out = backend.frame_outcome(3, np.full(8, 10.0), 400,
                                    np.random.default_rng(0),
                                    need_hints=False)
        assert out.hints is None
        assert out.ber_est >= 0.0

    def test_interference_mask_degrades_masked_half(self):
        from repro.core.hints import error_probabilities

        backend = SurrogatePhyBackend(default_table())
        mask = np.zeros(16, dtype=bool)
        mask[8:] = True
        out = backend.frame_outcome(3, np.full(16, 20.0), 1600,
                                    np.random.default_rng(2),
                                    interference_mask=mask)
        assert not out.delivered
        p = error_probabilities(out.hints)
        half = p.size // 2
        assert p[half:].mean() > 100 * p[:half].mean()

    def test_mask_shape_mismatch_rejected(self):
        backend = SurrogatePhyBackend(default_table())
        with pytest.raises(ValueError):
            backend.frame_outcome(3, np.full(8, 10.0), 400,
                                  np.random.default_rng(0),
                                  interference_mask=np.zeros(4, bool))

    def test_rate_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SurrogatePhyBackend(default_table(),
                                rates=RATE_TABLE)     # 8 rates vs 6

    def test_waterfall_monotone_in_snr(self):
        table = default_table()
        snrs = np.linspace(-2.0, 26.0, 57)
        for rate in range(table.n_rates):
            q = table.bit_error_rate(rate, snrs)
            assert np.all(np.diff(q) <= 1e-15)

    def test_robust_rates_beat_fragile_ones(self):
        table = default_table()
        mid = np.array([8.0])
        assert table.bit_error_rate(0, mid) < table.bit_error_rate(5, mid)


class TestObserve:
    """The trace-driven entry point shared by both backends."""

    def _trace(self, snr_db=25.0, true_snr_db=None, duration=0.1):
        from repro.traces.synthetic import constant_trace

        trace = constant_trace(best_rate=5, duration=duration,
                               snr_db=snr_db)
        if true_snr_db is not None:
            trace.true_snr_db = np.full(trace.n_slots, true_snr_db)
        return trace

    def test_wraps_frame_observation(self):
        from repro.traces.format import FrameObservation

        backend = SurrogatePhyBackend(default_table())
        obs = backend.observe(self._trace(), 0.01, 3, 1600,
                              np.random.default_rng(0))
        assert isinstance(obs, FrameObservation)
        assert obs.detected and obs.delivered
        assert obs.slot == self._trace().slot_at(0.01)

    def test_prefers_true_snr_over_estimate(self):
        # Recorded estimate says undetectable; true SNR is fine.  A
        # backend reading the estimate would drop the frame silently.
        trace = self._trace(snr_db=-10.0, true_snr_db=25.0)
        backend = SurrogatePhyBackend(default_table())
        obs = backend.observe(trace, 0.01, 3, 1600,
                              np.random.default_rng(0))
        assert obs.detected and obs.delivered

    def test_falls_back_to_estimate_without_true_snr(self):
        trace = self._trace(snr_db=-10.0)
        assert trace.true_snr_db is None
        backend = SurrogatePhyBackend(default_table())
        obs = backend.observe(trace, 0.01, 3, 1600,
                              np.random.default_rng(0))
        assert not obs.detected

    def test_full_backend_observe(self):
        backend = FullPhyBackend()
        obs = backend.observe(self._trace(), 0.01, 3, 368,
                              np.random.default_rng(0))
        assert obs.detected and obs.delivered
        assert obs.ber_true == 0.0


class TestCalibrationTable:
    def test_roundtrip_through_json(self, tmp_path):
        table = default_table()
        path = str(tmp_path / "table.json")
        table.save(path)
        loaded = CalibrationTable.load(path)
        assert np.allclose(table.ber, loaded.ber)
        assert np.allclose(table.loss, loaded.loss)
        snrs = np.linspace(0.0, 20.0, 11)
        for rate in range(table.n_rates):
            assert np.allclose(table.bit_error_rate(rate, snrs),
                               loaded.bit_error_rate(rate, snrs))
            assert np.allclose(table.hazard(rate, snrs),
                               loaded.hazard(rate, snrs))

    def test_version_mismatch_rejected(self, tmp_path):
        import json

        data = default_table().to_dict()
        data["meta"]["version"] = TABLE_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            CalibrationTable.from_dict(data)

    def test_interference_snr_within_grid(self):
        table = default_table()
        lo, hi = table.snr_grid_db[0], table.snr_grid_db[-1]
        for rate in range(table.n_rates):
            assert lo <= table.interference_snr_db(rate) <= hi

    def test_default_table_covers_prototype_rates(self):
        table = default_table()
        assert table.n_rates == len(RATE_TABLE.prototype_subset())
        assert table.rate_names == RATE_TABLE.prototype_subset().names()


class TestTinyCalibration:
    """End-to-end ``calibrate()`` on a deliberately tiny grid."""

    @pytest.fixture(scope="class")
    def tiny(self):
        from repro.phy.calibrate import calibrate

        return calibrate(snr_grid_db=np.array([0.0, 8.0, 16.0, 24.0]),
                         frames_per_point=2, payload_bits=256,
                         batch_size=2, interference_frames=1)

    def test_meta_records_provenance(self, tiny):
        assert tiny.meta["version"] == TABLE_VERSION
        assert tiny.meta["payload_bits"] == 256
        assert tiny.meta["frames_per_point"] == 2

    def test_usable_by_surrogate(self, tiny):
        backend = SurrogatePhyBackend(tiny)
        out = backend.frame_outcome(3, np.full(4, 24.0), 400,
                                    np.random.default_rng(0))
        assert out.delivered

    def test_roundtrips_with_nan_holes(self, tiny, tmp_path):
        path = str(tmp_path / "tiny.json")
        tiny.save(path)
        loaded = CalibrationTable.load(path)
        assert np.allclose(tiny.bit_error_rate(5, np.array([8.0])),
                           loaded.bit_error_rate(5, np.array([8.0])))


class TestContractEdges:
    """Edge cases of the shared frame_outcome contract."""

    def test_trajectory_finer_than_bits(self):
        # 200 samples for a 40-bit frame: zero-bit segments must be
        # dropped, not crash the segment bookkeeping.
        backend = SurrogatePhyBackend(default_table())
        out = backend.frame_outcome(3, np.full(200, 10.0), 8,
                                    np.random.default_rng(0))
        assert out.n_info_bits == 40
        assert out.hints.size == 40

    def test_payloads_byte_aligned_identically(self):
        # 1500 bits rounds up to 1504 + 32 CRC in both backends.
        rng = np.random.default_rng(0)
        sur = SurrogatePhyBackend(default_table())
        full = FullPhyBackend()
        out_s = sur.frame_outcome(3, np.array([20.0]), 1500, rng,
                                  need_hints=False)
        out_f = full.frame_outcome(3, np.array([20.0]), 1500, rng,
                                   need_hints=False)
        assert out_s.n_info_bits == out_f.n_info_bits == 1504 + 32
        assert sur.frame_airtime(1500, 3) == full.frame_airtime(1500, 3)

    def test_observe_rejects_mismatched_rate_names(self):
        # Same rate *count*, different rates: caught via provenance
        # labels instead of silently mis-modeling.
        from repro.phy.rates import RATE_TABLE, RateTable
        from repro.traces.synthetic import constant_trace

        shifted = RateTable(list(RATE_TABLE)[2:])     # 6 rates, wrong set
        trace = constant_trace(best_rate=5, duration=0.1, rates=shifted)
        backend = SurrogatePhyBackend(default_table())
        with pytest.raises(ValueError, match="do not match"):
            backend.observe(trace, 0.0, 3, 368,
                            np.random.default_rng(0))

    def test_airtime_uses_full_frame_geometry(self):
        # Preamble + header + body + postamble — the airtime the MAC
        # schedules, not just the body symbols.
        from repro.phy.transceiver import Transceiver

        backend = SurrogatePhyBackend(default_table())
        assert backend.frame_airtime(1500, 3) == \
            Transceiver().frame_airtime(1504, 3)

    def test_full_phy_trace_records_true_snr(self):
        from repro.traces.generate import generate_full_phy_trace

        trace = generate_full_phy_trace(np.random.default_rng(0),
                                        n_slots=1, payload_bits=104)
        assert trace.true_snr_db is not None
        assert trace.true_snr_db.shape == (1,)
        # 15 dB mean SNR through Rayleigh fading: the true value is
        # finite and in a physical range.
        assert -40.0 < trace.true_snr_db[0] < 40.0
