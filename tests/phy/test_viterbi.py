"""Tests for the hard-output Viterbi decoder."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy import bits as bitutil
from repro.phy.convcode import ConvolutionalCode, depuncture, puncture
from repro.phy.viterbi import viterbi_decode


def _to_llrs(coded_bits, magnitude=4.0):
    """Perfect-channel LLRs for hard coded bits."""
    return magnitude * (2.0 * coded_bits.astype(np.float64) - 1.0)


@pytest.fixture(scope="module")
def code():
    return ConvolutionalCode()


class TestCleanChannel:
    def test_decodes_clean_stream(self, code):
        rng = np.random.default_rng(0)
        info = bitutil.random_bits(200, rng)
        decoded = viterbi_decode(code, _to_llrs(code.encode(info)))
        assert np.array_equal(decoded, info)

    @pytest.mark.parametrize("rate", [Fraction(1, 2), Fraction(2, 3),
                                      Fraction(3, 4)])
    def test_decodes_through_puncturing(self, code, rate):
        rng = np.random.default_rng(1)
        info = bitutil.random_bits(150, rng)
        coded = code.encode(info)
        survived = puncture(coded, rate)
        llrs = depuncture(_to_llrs(survived), coded.size, rate)
        assert np.array_equal(viterbi_decode(code, llrs), info)


class TestErrorCorrection:
    def test_corrects_isolated_bit_flips(self, code):
        # d_free of the K=7 code is 10: up to 4 well-separated channel
        # errors must always be corrected at rate 1/2.
        rng = np.random.default_rng(2)
        info = bitutil.random_bits(200, rng)
        coded = code.encode(info).astype(np.float64)
        llrs = _to_llrs(coded)
        for pos in (10, 110, 210, 310):
            llrs[pos] = -llrs[pos]
        assert np.array_equal(viterbi_decode(code, llrs), info)

    def test_weighs_confidence(self, code):
        # A flipped bit with tiny magnitude must lose against correct
        # high-confidence neighbours.
        rng = np.random.default_rng(3)
        info = bitutil.random_bits(100, rng)
        llrs = _to_llrs(code.encode(info))
        llrs[20] = -0.01 * np.sign(llrs[20])
        assert np.array_equal(viterbi_decode(code, llrs), info)

    def test_erasures_tolerated(self, code):
        rng = np.random.default_rng(4)
        info = bitutil.random_bits(100, rng)
        llrs = _to_llrs(code.encode(info))
        llrs[40:46] = 0.0   # six consecutive erasures
        assert np.array_equal(viterbi_decode(code, llrs), info)


class TestValidation:
    def test_odd_length_rejected(self, code):
        with pytest.raises(ValueError):
            viterbi_decode(code, np.zeros(11))

    def test_too_short_rejected(self, code):
        with pytest.raises(ValueError):
            viterbi_decode(code, np.zeros(8))


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=120), st.integers(0, 2**32 - 1))
def test_roundtrip_property(n_bits, seed):
    code = ConvolutionalCode()
    rng = np.random.default_rng(seed)
    info = bitutil.random_bits(n_bits, rng)
    decoded = viterbi_decode(code, _to_llrs(code.encode(info)))
    assert np.array_equal(decoded, info)
