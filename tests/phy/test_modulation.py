"""Tests for constellation mapping and soft demapping."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy import bits as bitutil
from repro.phy.modulation import (CONSTELLATIONS, hard_demap, modulate,
                                  soft_demap)

ALL_MODS = list(CONSTELLATIONS)


class TestConstellations:
    @pytest.mark.parametrize("name", ALL_MODS)
    def test_unit_average_energy(self, name):
        points = CONSTELLATIONS[name].points
        assert np.isclose(np.mean(np.abs(points) ** 2), 1.0)

    @pytest.mark.parametrize("name", ALL_MODS)
    def test_point_count(self, name):
        const = CONSTELLATIONS[name]
        assert const.points.size == 2 ** const.bits_per_symbol

    @pytest.mark.parametrize("name,expected", [
        ("BPSK", 2.0), ("QPSK", np.sqrt(2)), ("QAM16", 2 / np.sqrt(10)),
        ("QAM64", 2 / np.sqrt(42)),
    ])
    def test_min_distance(self, name, expected):
        assert np.isclose(CONSTELLATIONS[name].min_distance, expected)

    @pytest.mark.parametrize("name", ["QPSK", "QAM16", "QAM64"])
    def test_gray_property(self, name):
        # Nearest neighbours in the constellation differ in exactly one
        # bit (Gray mapping) — this is what makes per-bit LLRs behave.
        const = CONSTELLATIONS[name]
        pts = const.points
        d_min = const.min_distance
        for i in range(pts.size):
            for j in range(pts.size):
                if i != j and np.abs(pts[i] - pts[j]) < d_min * 1.01:
                    diff = np.sum(const.bit_table[i] != const.bit_table[j])
                    assert diff == 1


class TestModulate:
    @pytest.mark.parametrize("name", ALL_MODS)
    def test_roundtrip_hard(self, name):
        const = CONSTELLATIONS[name]
        rng = np.random.default_rng(0)
        bits = bitutil.random_bits(const.bits_per_symbol * 40, rng)
        symbols = modulate(bits, name)
        assert np.array_equal(hard_demap(symbols, name), bits)

    def test_wrong_multiple_rejected(self):
        with pytest.raises(ValueError):
            modulate(np.zeros(3, dtype=np.uint8), "QPSK")

    def test_bpsk_is_real(self):
        bits = np.array([0, 1], dtype=np.uint8)
        symbols = modulate(bits, "BPSK")
        assert np.allclose(symbols.imag, 0)
        assert np.allclose(symbols.real, [-1, 1])


class TestSoftDemap:
    @pytest.mark.parametrize("name", ALL_MODS)
    def test_signs_recover_bits_at_high_snr(self, name):
        const = CONSTELLATIONS[name]
        rng = np.random.default_rng(1)
        bits = bitutil.random_bits(const.bits_per_symbol * 50, rng)
        y = modulate(bits, name)
        llrs = soft_demap(y, name, noise_var=0.01)
        assert np.array_equal((llrs > 0).astype(np.uint8), bits)

    def test_magnitude_scales_with_noise(self):
        rng = np.random.default_rng(2)
        bits = bitutil.random_bits(100, rng)
        y = modulate(bits, "BPSK")
        quiet = np.abs(soft_demap(y, "BPSK", noise_var=0.05))
        loud = np.abs(soft_demap(y, "BPSK", noise_var=0.5))
        assert quiet.mean() > loud.mean()

    def test_bpsk_llr_formula(self):
        # For BPSK with gain h and noise variance N0: LLR = 4 Re(h* y)/N0.
        y = np.array([0.7 + 0.2j])
        h = np.array([1.0 + 0.5j])
        n0 = 0.3
        llr = soft_demap(y, "BPSK", n0, gains=h)
        expected = 4.0 * np.real(np.conj(h[0]) * y[0]) / n0
        assert np.isclose(llr[0], expected)

    def test_channel_gain_compensation(self):
        rng = np.random.default_rng(3)
        bits = bitutil.random_bits(4 * 64, rng)
        y = modulate(bits, "QAM16")
        gains = np.full(y.size, 0.5 * np.exp(1j * 0.7))
        llrs = soft_demap(y * gains, "QAM16", noise_var=0.001, gains=gains)
        assert np.array_equal((llrs > 0).astype(np.uint8), bits)

    def test_faded_symbol_gives_weak_llrs(self):
        # When |h| is small the demapper must report low confidence —
        # the mechanism by which SoftPHY sees mid-frame fades.
        rng = np.random.default_rng(4)
        bits = bitutil.random_bits(2 * 100, rng)
        x = modulate(bits, "QPSK")
        strong_gain = np.ones(x.size)
        weak_gain = np.full(x.size, 0.1)
        nv = 0.1
        strong = np.abs(soft_demap(x * strong_gain, "QPSK", nv,
                                   gains=strong_gain))
        weak = np.abs(soft_demap(x * weak_gain, "QPSK", nv,
                                 gains=weak_gain))
        assert weak.mean() < strong.mean() / 5

    def test_max_log_close_to_exact(self):
        rng = np.random.default_rng(5)
        bits = bitutil.random_bits(4 * 200, rng)
        y = modulate(bits, "QAM16")
        y = y + (rng.normal(0, 0.1, y.size) + 1j * rng.normal(0, 0.1, y.size))
        exact = soft_demap(y, "QAM16", 0.02)
        approx = soft_demap(y, "QAM16", 0.02, max_log=True)
        agree = np.mean(np.sign(exact) == np.sign(approx))
        assert agree > 0.99

    def test_bad_noise_var_rejected(self):
        with pytest.raises(ValueError):
            soft_demap(np.zeros(2, dtype=complex), "BPSK", 0.0)

    def test_gain_length_checked(self):
        with pytest.raises(ValueError):
            soft_demap(np.zeros(4, dtype=complex), "BPSK", 0.1,
                       gains=np.ones(3))


@settings(max_examples=20, deadline=None)
@given(st.sampled_from(ALL_MODS), st.integers(0, 2**32 - 1))
def test_mod_demod_roundtrip_property(name, seed):
    const = CONSTELLATIONS[name]
    rng = np.random.default_rng(seed)
    bits = bitutil.random_bits(const.bits_per_symbol * 8, rng)
    assert np.array_equal(hard_demap(modulate(bits, name), name), bits)
