"""Unit and property tests for the convolutional code and puncturing."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy import bits as bitutil
from repro.phy.convcode import (ConvolutionalCode, PUNCTURE_PATTERNS,
                                depuncture, n_coded_bits, puncture)


@pytest.fixture(scope="module")
def code():
    return ConvolutionalCode()


class TestEncoder:
    def test_output_length(self, code):
        info = np.zeros(100, dtype=np.uint8)
        assert code.encode(info).size == 2 * (100 + code.n_tail_bits)

    def test_all_zero_input_gives_all_zero_output(self, code):
        coded = code.encode(np.zeros(50, dtype=np.uint8))
        assert not coded.any()

    def test_linearity(self, code):
        # A convolutional code is linear: enc(a ^ b) == enc(a) ^ enc(b).
        rng = np.random.default_rng(0)
        a = bitutil.random_bits(64, rng)
        b = bitutil.random_bits(64, rng)
        assert np.array_equal(code.encode(a ^ b),
                              code.encode(a) ^ code.encode(b))

    def test_known_impulse_response(self, code):
        # A single 1 produces the generator polynomials' coefficients.
        impulse = np.zeros(10, dtype=np.uint8)
        impulse[0] = 1
        coded = code.encode(impulse)
        # g0 = 133 octal = 1011011, g1 = 171 octal = 1111001 — the
        # encoder shifts the newest bit in at the MSB side, so the
        # impulse response reads the polynomial bits LSB-first.
        g0_taps = [(0o133 >> i) & 1 for i in range(7)][::-1]
        g1_taps = [(0o171 >> i) & 1 for i in range(7)][::-1]
        assert list(coded[0:14:2]) == g0_taps
        assert list(coded[1:14:2]) == g1_taps

    def test_trellis_is_two_regular(self, code):
        t = code.trellis
        assert t.n_states == 64
        # every state has exactly two successors and two predecessors
        assert np.all(np.sort(t.next_state.ravel())
                      == np.repeat(np.arange(64), 2))
        assert np.all(np.sort(t.prev_state.ravel())
                      == np.repeat(np.arange(64), 2))

    def test_short_constraint_length(self):
        small = ConvolutionalCode(constraint_length=3, generators=(0o5, 0o7))
        assert small.trellis.n_states == 4
        assert small.encode(np.zeros(4, dtype=np.uint8)).size == 2 * 6


class TestPuncturing:
    @pytest.mark.parametrize("rate", list(PUNCTURE_PATTERNS))
    def test_length_matches_rate(self, rate):
        # Puncturing a long stream approaches the nominal code rate.
        n = 1200
        stream = np.zeros(2 * n, dtype=np.uint8)
        kept = puncture(stream, rate).size
        assert kept == n_coded_bits(n, rate)
        assert abs(kept / n - 1 / rate) < 0.01

    @pytest.mark.parametrize("rate", list(PUNCTURE_PATTERNS))
    def test_depuncture_restores_positions(self, rate):
        rng = np.random.default_rng(3)
        n = 96
        mother = rng.normal(size=2 * n)
        survived = puncture(mother, rate)
        restored = depuncture(survived, 2 * n, rate, fill=0.0)
        pattern = PUNCTURE_PATTERNS[rate]
        mask = np.tile(pattern, -(-2 * n // pattern.size))[: 2 * n]
        assert np.array_equal(restored[mask], mother[mask])
        assert not restored[~mask].any()

    def test_depuncture_length_check(self):
        with pytest.raises(ValueError):
            depuncture(np.zeros(10), 100, Fraction(3, 4))

    def test_every_bit_pair_keeps_one_survivor(self):
        # The per-info-bit symbol mapping relies on at least one of the
        # two mother bits of every trellis step surviving puncturing.
        for rate, pattern in PUNCTURE_PATTERNS.items():
            reps = np.tile(pattern, 6)
            pairs = reps.reshape(-1, 2)
            assert pairs.any(axis=1).all(), rate


class TestCodedLength:
    def test_rate_half(self, code):
        assert code.coded_length(100) == 2 * (100 + 6)

    def test_rate_three_quarters(self, code):
        n = code.coded_length(120, Fraction(3, 4))
        assert abs(n - (120 + 6) * 4 / 3) <= 2


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=200))
def test_encode_deterministic(n_bits):
    code = ConvolutionalCode()
    rng = np.random.default_rng(n_bits)
    info = bitutil.random_bits(n_bits, rng)
    assert np.array_equal(code.encode(info), code.encode(info))
