"""Tests for preamble-based SNR estimation."""

import numpy as np
import pytest

from repro.channel.awgn import awgn
from repro.phy.ofdm import training_symbols
from repro.phy.snr import (db_to_linear, estimate_preamble_snr, snr_to_db,
                           true_average_snr_db)


class TestDbConversions:
    def test_roundtrip(self):
        assert snr_to_db(db_to_linear(7.3)) == pytest.approx(7.3)

    def test_zero_floored(self):
        assert snr_to_db(0.0) == pytest.approx(-120.0)


class TestPreambleEstimate:
    @pytest.mark.parametrize("snr_db", [0, 5, 10, 20])
    def test_accuracy_on_awgn(self, snr_db):
        rng = np.random.default_rng(snr_db)
        training = training_symbols(2, 512)
        noise_var = db_to_linear(-snr_db)
        estimates = []
        for _ in range(10):
            rx = training + awgn(training.shape, noise_var, rng)
            est, _ = estimate_preamble_snr(rx, training)
            estimates.append(est)
        assert np.mean(estimates) == pytest.approx(snr_db, abs=1.0)

    def test_gain_estimate(self):
        rng = np.random.default_rng(5)
        training = training_symbols(2, 256)
        h = 0.8 * np.exp(1j * 1.1)
        rx = h * training + awgn(training.shape, 1e-4, rng)
        _, gain = estimate_preamble_snr(rx, training)
        assert abs(gain - h) < 0.02

    def test_misses_mid_frame_fade(self):
        # The defining weakness of preamble SNR (paper section 2.2 /
        # Fig. 9): a fade after the preamble is invisible to it.
        rng = np.random.default_rng(6)
        training = training_symbols(2, 256)
        noise_var = db_to_linear(-15)
        rx = training + awgn(training.shape, noise_var, rng)
        est, _ = estimate_preamble_snr(rx, training)
        # Frame gains collapse after the preamble; the true average SNR
        # is far below the preamble estimate.
        gains = np.concatenate([np.ones(2), np.full(10, 0.05)])
        truth = true_average_snr_db(gains, noise_var)
        assert est > truth + 5.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            estimate_preamble_snr(np.zeros((2, 8)), np.zeros((2, 4)))
