"""Unit and property tests for repro.phy.bits."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.phy import bits as bitutil


class TestByteConversion:
    def test_roundtrip(self):
        data = b"\x00\xff\x5a\x01"
        assert bitutil.bits_to_bytes(bitutil.bytes_to_bits(data)) == data

    def test_msb_first(self):
        bits = bitutil.bytes_to_bits(b"\x80")
        assert list(bits) == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_empty(self):
        assert bitutil.bytes_to_bits(b"").size == 0

    def test_non_byte_aligned_rejected(self):
        with pytest.raises(ValueError):
            bitutil.bits_to_bytes(np.ones(7, dtype=np.uint8))

    @given(st.binary(max_size=64))
    def test_roundtrip_property(self, data):
        assert bitutil.bits_to_bytes(bitutil.bytes_to_bits(data)) == data


class TestIntConversion:
    def test_roundtrip(self):
        bits = bitutil.int_to_bits(0xABC, 12)
        assert bitutil.bits_to_int(bits) == 0xABC

    def test_width_enforced(self):
        with pytest.raises(ValueError):
            bitutil.int_to_bits(16, 4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bitutil.int_to_bits(-1, 4)

    def test_msb_first(self):
        assert list(bitutil.int_to_bits(0b100, 3)) == [1, 0, 0]

    @given(st.integers(min_value=0, max_value=2**20 - 1))
    def test_roundtrip_property(self, value):
        assert bitutil.bits_to_int(bitutil.int_to_bits(value, 20)) == value


class TestCrc32:
    def test_detects_single_bit_flip(self):
        rng = np.random.default_rng(0)
        payload = bitutil.random_bits(64, rng)
        framed = bitutil.append_crc32(payload)
        assert bitutil.check_crc32(framed)
        for pos in range(framed.size):
            corrupted = framed.copy()
            corrupted[pos] ^= 1
            assert not bitutil.check_crc32(corrupted)

    def test_rejects_short_input(self):
        assert not bitutil.check_crc32(np.ones(16, dtype=np.uint8))

    @given(st.binary(min_size=1, max_size=32))
    def test_append_check_property(self, data):
        payload = bitutil.bytes_to_bits(data)
        assert bitutil.check_crc32(bitutil.append_crc32(payload))


class TestCrc16:
    def test_differs_on_bit_flip(self):
        rng = np.random.default_rng(1)
        bits = bitutil.random_bits(48, rng)
        base = bitutil.crc16(bits)
        for pos in range(bits.size):
            corrupted = bits.copy()
            corrupted[pos] ^= 1
            assert bitutil.crc16(corrupted) != base

    def test_accepts_unaligned_length(self):
        # The link header's fields are 48 bits, not byte-aligned at
        # every boundary; CRC-16 must handle arbitrary bit counts.
        assert isinstance(bitutil.crc16(np.ones(13, dtype=np.uint8)), int)


class TestScrambler:
    def test_involution(self):
        rng = np.random.default_rng(2)
        bits = bitutil.random_bits(500, rng)
        assert np.array_equal(
            bitutil.descramble(bitutil.scramble(bits)), bits)

    def test_whitens_constant_input(self):
        zeros = np.zeros(254, dtype=np.uint8)
        scrambled = bitutil.scramble(zeros)
        ones_fraction = scrambled.mean()
        assert 0.3 < ones_fraction < 0.7

    def test_seed_changes_sequence(self):
        bits = np.zeros(127, dtype=np.uint8)
        assert not np.array_equal(bitutil.scramble(bits, seed=0x5D),
                                  bitutil.scramble(bits, seed=0x11))

    def test_bad_seed_rejected(self):
        with pytest.raises(ValueError):
            bitutil.scramble(np.zeros(8, dtype=np.uint8), seed=0)


class TestHammingDistance:
    def test_counts_differences(self):
        a = np.array([0, 1, 1, 0], dtype=np.uint8)
        b = np.array([1, 1, 0, 0], dtype=np.uint8)
        assert bitutil.hamming_distance(a, b) == 2

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bitutil.hamming_distance(np.zeros(3, dtype=np.uint8),
                                     np.zeros(4, dtype=np.uint8))
