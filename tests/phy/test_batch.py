"""Parity suite: the batched PHY fast path is bit-identical to the
per-frame reference path.

Every assertion here is **exact** (``np.array_equal`` on float arrays,
``==`` on scalars): the batched kernels perform the same elementwise
operations and last-axis reductions as the scalar code, so any
difference at all — even in the last ulp — is a regression.  This is
what lets ``batch_size`` be a pure throughput knob: experiments may
batch frames however they like without shifting a single paper curve.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.channel.awgn import apply_channel, noise_var_for_snr_db
from repro.phy import bits as bitutil
from repro.phy.bcjr import bcjr_decode, bcjr_decode_batch
from repro.phy.convcode import ConvolutionalCode, depuncture, puncture
from repro.phy.interleaver import deinterleave, interleave
from repro.phy.modulation import soft_demap, soft_demap_batch
from repro.phy.transceiver import Transceiver
from repro.phy.viterbi import viterbi_decode, viterbi_decode_batch

ALL_RATES = [0, 1, 2, 3, 4, 5]          # BPSK/QPSK/QAM16 x 1/2, 3/4
PUNCTURED_RATES = [1, 3, 5]             # rate-3/4 bodies


@pytest.fixture(scope="module")
def code():
    return ConvolutionalCode()


@pytest.fixture(scope="module")
def phy():
    return Transceiver()


def _noisy_llr_batch(code, code_rate, n_info, n_frames, rng,
                     snr_db=2.0):
    """Depunctured channel-LLR rows for random frames over BPSK/AWGN."""
    rows = []
    snr = 10 ** (snr_db / 10)
    for _ in range(n_frames):
        info = bitutil.random_bits(n_info, rng)
        coded = code.encode(info)
        kept = puncture(coded, code_rate)
        x = 2.0 * kept.astype(np.float64) - 1.0
        y = x + rng.normal(0, np.sqrt(1 / (2 * snr)), size=x.size)
        rows.append(depuncture(4.0 * snr * y / 2.0, coded.size,
                               code_rate))
    return np.stack(rows)


class TestDecoderKernelParity:
    @pytest.mark.parametrize("variant", ["log-map", "max-log-map"])
    @pytest.mark.parametrize("rate", [Fraction(1, 2), Fraction(2, 3),
                                      Fraction(3, 4)])
    def test_bcjr_batch_matches_scalar(self, code, variant, rate):
        rng = np.random.default_rng(10)
        batch = _noisy_llr_batch(code, rate, 61, 5, rng)
        result = bcjr_decode_batch(code, batch, variant)
        for i in range(batch.shape[0]):
            scalar = bcjr_decode(code, batch[i], variant)
            assert np.array_equal(result.llrs[i], scalar.llrs)
            assert np.array_equal(result.bits[i], scalar.bits)

    @pytest.mark.parametrize("rate", [Fraction(1, 2), Fraction(2, 3),
                                      Fraction(3, 4)])
    def test_viterbi_batch_matches_scalar(self, code, rate):
        rng = np.random.default_rng(11)
        batch = _noisy_llr_batch(code, rate, 77, 5, rng)
        decoded = viterbi_decode_batch(code, batch)
        for i in range(batch.shape[0]):
            assert np.array_equal(decoded[i],
                                  viterbi_decode(code, batch[i]))

    def test_batch_of_one_is_scalar(self, code):
        rng = np.random.default_rng(12)
        batch = _noisy_llr_batch(code, Fraction(1, 2), 40, 1, rng)
        assert np.array_equal(
            bcjr_decode_batch(code, batch).llrs[0],
            bcjr_decode(code, batch[0]).llrs)

    @pytest.mark.parametrize("variant", ["log-map", "max-log-map"])
    def test_fused_and_materialised_strategies_agree(self, code,
                                                     variant):
        """The kernel switches execution strategy at _FUSED_MIN_FRAMES;
        both must be bit-identical (to each other and the scalar
        wrapper, which always uses the small-batch strategy)."""
        from repro.phy.bcjr import _FUSED_MIN_FRAMES

        rng = np.random.default_rng(19)
        n_frames = _FUSED_MIN_FRAMES + 1
        batch = _noisy_llr_batch(code, Fraction(1, 2), 53, n_frames,
                                 rng)
        fused = bcjr_decode_batch(code, batch, variant)
        for i in range(n_frames):
            scalar = bcjr_decode(code, batch[i], variant)
            assert np.array_equal(fused.llrs[i], scalar.llrs)

    def test_rejects_wrong_dimensionality(self, code):
        with pytest.raises(ValueError, match="2-D"):
            bcjr_decode_batch(code, np.zeros(40))
        with pytest.raises(ValueError, match="2-D"):
            viterbi_decode_batch(code, np.zeros(40))
        with pytest.raises(ValueError, match="1-D"):
            bcjr_decode(code, np.zeros((2, 40)))
        with pytest.raises(ValueError, match="1-D"):
            viterbi_decode(code, np.zeros((2, 40)))


class TestEncoderKernelParity:
    def test_encode_batch_matches_scalar(self, code):
        rng = np.random.default_rng(13)
        frames = rng.integers(0, 2, (6, 91)).astype(np.uint8)
        batch = code.encode_batch(frames)
        for i in range(frames.shape[0]):
            assert np.array_equal(batch[i], code.encode(frames[i]))

    def test_puncture_depuncture_rows(self):
        rng = np.random.default_rng(14)
        vals = rng.normal(size=(4, 24))
        for rate in (Fraction(2, 3), Fraction(3, 4)):
            kept = puncture(vals, rate)
            back = depuncture(kept, 24, rate)
            for i in range(vals.shape[0]):
                assert np.array_equal(kept[i],
                                      puncture(vals[i], rate))
                assert np.array_equal(
                    back[i], depuncture(puncture(vals[i], rate), 24,
                                        rate))

    def test_interleave_rows(self):
        rng = np.random.default_rng(15)
        vals = rng.normal(size=(3, 2 * 128))
        out = interleave(vals, 128, 2)
        back = deinterleave(out, 128, 2)
        assert np.array_equal(back, vals)
        for i in range(vals.shape[0]):
            assert np.array_equal(out[i], interleave(vals[i], 128, 2))

    def test_scramble_rows(self):
        rng = np.random.default_rng(16)
        frames = rng.integers(0, 2, (4, 300)).astype(np.uint8)
        out = bitutil.scramble(frames)
        for i in range(frames.shape[0]):
            assert np.array_equal(out[i], bitutil.scramble(frames[i]))
        assert np.array_equal(bitutil.descramble(out), frames)


class TestDemapParity:
    @pytest.mark.parametrize("modulation",
                             ["BPSK", "QPSK", "QAM16", "QAM64"])
    @pytest.mark.parametrize("max_log", [False, True])
    def test_batch_matches_scalar_per_frame_noise(self, modulation,
                                                  max_log):
        rng = np.random.default_rng(17)
        y = (rng.normal(size=(5, 48))
             + 1j * rng.normal(size=(5, 48)))
        gains = (rng.normal(size=(5, 48))
                 + 1j * rng.normal(size=(5, 48)))
        noise_var = rng.uniform(0.1, 2.0, size=5)
        batch = soft_demap_batch(y, modulation, noise_var, gains=gains,
                                 max_log=max_log)
        for i in range(5):
            scalar = soft_demap(y[i], modulation, float(noise_var[i]),
                                gains=gains[i], max_log=max_log)
            assert np.array_equal(batch[i], scalar)

    def test_noise_var_validation(self):
        with pytest.raises(ValueError, match="positive"):
            soft_demap_batch(np.zeros((2, 4), complex), "BPSK",
                             np.array([1.0, 0.0]))


class TestPipelineParity:
    """End-to-end: transmit/receive stacks vs the scalar reference."""

    @pytest.mark.parametrize("rate_index", ALL_RATES)
    def test_transmit_batch(self, phy, rate_index):
        rng = np.random.default_rng(20 + rate_index)
        payloads = rng.integers(0, 2, (4, 104)).astype(np.uint8)
        batch = phy.transmit_batch(payloads, rate_index,
                                   seqs=[5, 6, 7, 8])
        for i in range(4):
            ref = phy.transmit(payloads[i], rate_index, seq=5 + i)
            assert np.array_equal(batch.symbols[i], ref.symbols)
            assert np.array_equal(batch.body_info_bits[i],
                                  ref.body_info_bits)
            assert batch.headers[i] == ref.header
        assert batch.layout == phy.transmit(payloads[0],
                                            rate_index).layout

    def test_txbatch_frame_view(self, phy):
        """TxBatch.frame(i) is a faithful scalar TxFrame view."""
        from repro.phy.transceiver import TxFrame

        rng = np.random.default_rng(25)
        payloads = rng.integers(0, 2, (3, 104)).astype(np.uint8)
        batch = phy.transmit_batch(payloads, 2, seqs=[3, 4, 5])
        assert len(batch) == 3
        for i in range(3):
            view = batch.frame(i)
            ref = phy.transmit(payloads[i], 2, seq=3 + i)
            assert isinstance(view, TxFrame)
            assert view.header == ref.header
            assert view.layout == ref.layout
            assert np.array_equal(view.symbols, ref.symbols)
            assert np.array_equal(view.payload_bits, ref.payload_bits)
            assert np.array_equal(view.body_info_bits,
                                  ref.body_info_bits)

    def test_bcjr_batch_result_frame_view(self, code):
        rng = np.random.default_rng(26)
        batch = _noisy_llr_batch(code, Fraction(1, 2), 50, 3, rng)
        result = bcjr_decode_batch(code, batch)
        assert len(result) == 3
        for i in range(3):
            view = result.frame(i)
            assert np.array_equal(view.llrs, result.llrs[i])
            assert np.array_equal(view.bits, result.bits[i])

    @pytest.mark.parametrize("rate_index", ALL_RATES)
    def test_receive_batch(self, phy, rate_index):
        """Bits, LLRs, hints, SNR/noise estimates, CRC and header
        outcomes are all bit-identical — across modulations, punctured
        code rates, and the odd-length padded tails each rate's layout
        produces for a 104-bit payload."""
        rng = np.random.default_rng(30 + rate_index)
        payload = rng.integers(0, 2, 104).astype(np.uint8)
        tx = phy.transmit(payload, rate_index)
        noise_var = noise_var_for_snr_db(5.0)
        n_frames = 4
        gains = np.ones((n_frames, tx.layout.n_symbols), complex)
        rx_syms = np.empty((n_frames, tx.layout.n_symbols,
                            phy.mode.n_subcarriers), complex)
        refs = []
        for i in range(n_frames):
            rx_syms[i], g = apply_channel(tx.symbols, gains[i],
                                          noise_var, rng)
            refs.append(phy.receive(rx_syms[i], g, tx.layout,
                                    tx_frame=tx))
        batch = phy.receive_batch(rx_syms, gains, tx.layout, tx=tx)
        assert len(batch) == n_frames
        for got, ref in zip(batch, refs):
            assert np.array_equal(got.llrs, ref.llrs)
            assert np.array_equal(got.hints, ref.hints)
            assert np.array_equal(got.body_bits, ref.body_bits)
            assert np.array_equal(got.payload_bits, ref.payload_bits)
            assert np.array_equal(got.error_mask, ref.error_mask)
            assert got.snr_db == ref.snr_db
            assert got.noise_var_est == ref.noise_var_est
            assert got.crc_ok == ref.crc_ok
            assert got.header_ok == ref.header_ok
            assert got.true_ber == ref.true_ber
            if got.header_ok:
                assert got.header == ref.header

    def test_receive_batch_frequency_selective_gains(self, phy):
        rng = np.random.default_rng(40)
        payload = rng.integers(0, 2, 104).astype(np.uint8)
        tx = phy.transmit(payload, 2)
        noise_var = noise_var_for_snr_db(8.0)
        shape = (3, tx.layout.n_symbols, phy.mode.n_subcarriers)
        gains = np.ones(shape, complex) * (0.9 + 0.1j) \
            + 0.05 * (rng.normal(size=shape)
                      + 1j * rng.normal(size=shape))
        rx_syms = np.empty(shape, complex)
        refs = []
        for i in range(3):
            rx_syms[i], g = apply_channel(tx.symbols, gains[i],
                                          noise_var, rng)
            refs.append(phy.receive(rx_syms[i], g, tx.layout,
                                    tx_frame=tx))
        batch = phy.receive_batch(rx_syms, gains, tx.layout, tx=tx)
        for got, ref in zip(batch, refs):
            assert np.array_equal(got.llrs, ref.llrs)
            assert got.snr_db == ref.snr_db

    def test_run_batch_matches_sequential_rng(self, phy):
        """run_batch draws noise frame-by-frame, so the same generator
        state yields bit-identical results to a sequential loop."""
        rng = np.random.default_rng(50)
        payload = rng.integers(0, 2, 104).astype(np.uint8)
        tx = phy.transmit(payload, 3)
        noise_var = noise_var_for_snr_db(6.0)
        gains = np.ones((5, tx.layout.n_symbols), complex)

        batch = phy.run_batch(tx, gains, noise_var,
                              np.random.default_rng(99))
        seq_rng = np.random.default_rng(99)
        for i in range(5):
            rx_sym, g = apply_channel(tx.symbols, gains[i], noise_var,
                                      seq_rng)
            ref = phy.receive(rx_sym, g, tx.layout, tx_frame=tx)
            assert np.array_equal(batch[i].llrs, ref.llrs)
            assert batch[i].true_ber == ref.true_ber

    def test_no_interleaver_variant(self):
        phy = Transceiver(use_interleaver=False)
        rng = np.random.default_rng(60)
        payload = rng.integers(0, 2, 104).astype(np.uint8)
        tx = phy.transmit(payload, 2)
        gains = np.ones((3, tx.layout.n_symbols), complex)
        batch = phy.run_batch(tx, gains, noise_var_for_snr_db(6.0),
                              np.random.default_rng(61))
        seq_rng = np.random.default_rng(61)
        for i in range(3):
            rx_sym, g = apply_channel(tx.symbols, gains[i],
                                      noise_var_for_snr_db(6.0),
                                      seq_rng)
            ref = phy.receive(rx_sym, g, tx.layout, tx_frame=tx)
            assert np.array_equal(batch[i].llrs, ref.llrs)

    def test_batch_input_validation(self, phy):
        rng = np.random.default_rng(70)
        payload = rng.integers(0, 2, (2, 104)).astype(np.uint8)
        with pytest.raises(ValueError, match="n_frames"):
            phy.transmit_batch(payload[0], 0)
        with pytest.raises(ValueError, match="sequence number"):
            phy.transmit_batch(payload, 0, seqs=[1])
        tx = phy.transmit_batch(payload, 0)
        bad = np.zeros((2, tx.layout.n_symbols + 1,
                        phy.mode.n_subcarriers), complex)
        with pytest.raises(ValueError, match="layout"):
            phy.receive_batch(bad, np.ones((2, tx.layout.n_symbols),
                                           complex), tx.layout)


class TestExperimentBatchInvariance:
    """batch_size is a pure throughput knob for the experiments."""

    def test_fig07_results_independent_of_batch_size(self):
        from repro.experiments.fig07_static import run_fig7

        grid = np.arange(4.0, 11.0, 3.0)
        ref = run_fig7(seed=7, payload_bits=104, frames_per_point=3,
                       batch_size=1, snr_grid_db=grid,
                       rate_indices=[0, 3])
        for batch_size in (2, 7):
            got = run_fig7(seed=7, payload_bits=104,
                           frames_per_point=3, batch_size=batch_size,
                           snr_grid_db=grid, rate_indices=[0, 3])
            assert np.array_equal(got.estimates, ref.estimates)
            assert np.array_equal(got.truths, ref.truths)
            assert np.array_equal(got.snr_estimates, ref.snr_estimates)
            assert np.array_equal(got.error_counts, ref.error_counts)

    def test_fig08_results_independent_of_batch_size(self):
        from repro.experiments.fig08_mobile import run_fig8

        ref = run_fig8(seed=8, payload_bits=104, n_frames=5,
                       batch_size=1)
        got = run_fig8(seed=8, payload_bits=104, n_frames=5,
                       batch_size=3)
        for label in ref.estimates:
            assert np.array_equal(got.estimates[label],
                                  ref.estimates[label])
            assert np.array_equal(got.truths[label], ref.truths[label])
            assert np.array_equal(got.snrs[label], ref.snrs[label])
