"""Property-based round-trip tests for the PHY's invertible stages.

Hypothesis drives random lengths, seeds, and geometries through the
algebraic identities the pipeline depends on:

* ``deinterleave . interleave == identity`` (and vice versa) for any
  valid block geometry — the receiver must undo the transmitter
  exactly, or coded bits land on the wrong trellis transitions;
* zero-noise decoding recovers the encoded bits exactly (Viterbi and
  BCJR, at every puncturing rate) — the code is lossless on a clean
  channel;
* ``depuncture . puncture`` restores every surviving position;
* the scrambler is an involution;
* the batched encoder equals the scalar encoder row by row.
"""

from fractions import Fraction

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.phy import bits as bitutil
from repro.phy.bcjr import bcjr_decode
from repro.phy.convcode import (ConvolutionalCode, PUNCTURE_PATTERNS,
                                depuncture, puncture)
from repro.phy.interleaver import deinterleave, interleave
from repro.phy.viterbi import viterbi_decode

_CODE = ConvolutionalCode()

# Valid interleaver geometries: block_size must be a multiple of 16
# columns and of s = max(bps // 2, 1); bps * n_subcarriers layouts
# always satisfy both, so draw (bps, n_subcarriers) like real modes.
_GEOMETRY = st.tuples(st.sampled_from([1, 2, 4, 6]),
                      st.sampled_from([16, 48, 64, 128, 256]))

_RATES = st.sampled_from([Fraction(1, 2), Fraction(2, 3),
                          Fraction(3, 4)])


@settings(max_examples=25, deadline=None)
@given(geometry=_GEOMETRY, n_blocks=st.integers(1, 4),
       seed=st.integers(0, 2**32 - 1))
def test_deinterleave_inverts_interleave(geometry, n_blocks, seed):
    bps, n_subcarriers = geometry
    block = bps * n_subcarriers
    rng = np.random.default_rng(seed)
    values = rng.normal(size=n_blocks * block)
    assert np.array_equal(
        deinterleave(interleave(values, block, bps), block, bps),
        values)


@settings(max_examples=25, deadline=None)
@given(geometry=_GEOMETRY, n_blocks=st.integers(1, 4),
       seed=st.integers(0, 2**32 - 1))
def test_interleave_inverts_deinterleave(geometry, n_blocks, seed):
    bps, n_subcarriers = geometry
    block = bps * n_subcarriers
    rng = np.random.default_rng(seed)
    values = rng.normal(size=n_blocks * block)
    assert np.array_equal(
        interleave(deinterleave(values, block, bps), block, bps),
        values)


@settings(max_examples=25, deadline=None)
@given(geometry=_GEOMETRY, n_frames=st.integers(1, 4),
       seed=st.integers(0, 2**32 - 1))
def test_interleaver_roundtrip_on_frame_stacks(geometry, n_frames,
                                               seed):
    bps, n_subcarriers = geometry
    block = bps * n_subcarriers
    rng = np.random.default_rng(seed)
    values = rng.normal(size=(n_frames, 2 * block))
    assert np.array_equal(
        deinterleave(interleave(values, block, bps), block, bps),
        values)


@settings(max_examples=25, deadline=None)
@given(n_info=st.integers(1, 300), seed=st.integers(0, 2**32 - 1),
       rate=_RATES)
def test_zero_noise_viterbi_recovers_info(n_info, seed, rate):
    rng = np.random.default_rng(seed)
    info = bitutil.random_bits(n_info, rng)
    coded = _CODE.encode(info)
    kept = puncture(coded, rate)
    llrs = depuncture(4.0 * (2.0 * kept.astype(np.float64) - 1.0),
                      coded.size, rate)
    assert np.array_equal(viterbi_decode(_CODE, llrs), info)


@settings(max_examples=15, deadline=None)
@given(n_info=st.integers(1, 200), seed=st.integers(0, 2**32 - 1),
       rate=_RATES)
def test_zero_noise_bcjr_recovers_info(n_info, seed, rate):
    rng = np.random.default_rng(seed)
    info = bitutil.random_bits(n_info, rng)
    coded = _CODE.encode(info)
    kept = puncture(coded, rate)
    llrs = depuncture(4.0 * (2.0 * kept.astype(np.float64) - 1.0),
                      coded.size, rate)
    assert np.array_equal(bcjr_decode(_CODE, llrs).bits, info)


@settings(max_examples=25, deadline=None)
@given(n_mother=st.integers(2, 400), seed=st.integers(0, 2**32 - 1),
       rate=_RATES)
def test_depuncture_restores_surviving_positions(n_mother, seed, rate):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=n_mother)
    restored = depuncture(puncture(values, rate), n_mother, rate)
    pattern = PUNCTURE_PATTERNS[rate]
    mask = np.tile(pattern, -(-n_mother // pattern.size))[:n_mother]
    assert np.array_equal(restored[mask], values[mask])
    assert np.all(restored[~mask] == 0.0)


@settings(max_examples=25, deadline=None)
@given(n_bits=st.integers(1, 500), seed=st.integers(0, 2**32 - 1),
       scrambler_seed=st.integers(1, 127))
def test_scramble_is_involution(n_bits, seed, scrambler_seed):
    rng = np.random.default_rng(seed)
    bits = bitutil.random_bits(n_bits, rng)
    scrambled = bitutil.scramble(bits, scrambler_seed)
    assert np.array_equal(bitutil.descramble(scrambled, scrambler_seed),
                          bits)
    if n_bits > 64:   # whitening actually changed something
        assert not np.array_equal(scrambled, bits)


@settings(max_examples=20, deadline=None)
@given(n_info=st.integers(1, 150), n_frames=st.integers(1, 5),
       seed=st.integers(0, 2**32 - 1))
def test_encode_batch_matches_scalar_rows(n_info, n_frames, seed):
    rng = np.random.default_rng(seed)
    frames = rng.integers(0, 2, (n_frames, n_info)).astype(np.uint8)
    batch = _CODE.encode_batch(frames)
    for i in range(n_frames):
        assert np.array_equal(batch[i], _CODE.encode(frames[i]))
