"""Tests for the link-layer frame header."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.frame import (FLAG_FEEDBACK, FLAG_HAS_POSTAMBLE, HEADER_BITS,
                             LinkHeader)


def _header(**overrides):
    fields = dict(dest=5, src=2, seq=100, rate_index=3, length_bytes=1400,
                  flags=0)
    fields.update(overrides)
    return LinkHeader(**fields)


class TestSerialisation:
    def test_roundtrip(self):
        header = _header(flags=FLAG_HAS_POSTAMBLE)
        parsed, crc_ok = LinkHeader.from_bits(header.to_bits())
        assert crc_ok
        assert parsed == header

    def test_bit_width(self):
        assert _header().to_bits().size == HEADER_BITS

    def test_crc_detects_corruption(self):
        bits = _header().to_bits()
        for pos in range(bits.size):
            corrupted = bits.copy()
            corrupted[pos] ^= 1
            _, crc_ok = LinkHeader.from_bits(corrupted)
            assert not crc_ok

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            LinkHeader.from_bits(np.zeros(32, dtype=np.uint8))


class TestFieldValidation:
    @pytest.mark.parametrize("field,bad", [
        ("dest", 256), ("src", -1), ("seq", 4096), ("rate_index", 16),
        ("length_bytes", 4096), ("flags", 16),
    ])
    def test_out_of_range_rejected(self, field, bad):
        with pytest.raises(ValueError):
            _header(**{field: bad})


class TestFlags:
    def test_postamble_flag(self):
        assert _header(flags=FLAG_HAS_POSTAMBLE).has_postamble
        assert not _header().has_postamble

    def test_feedback_flag(self):
        assert _header(flags=FLAG_FEEDBACK).is_feedback
        assert not _header(flags=FLAG_HAS_POSTAMBLE).is_feedback


@settings(max_examples=50, deadline=None)
@given(dest=st.integers(0, 255), src=st.integers(0, 255),
       seq=st.integers(0, 4095), rate_index=st.integers(0, 15),
       length_bytes=st.integers(0, 4095), flags=st.integers(0, 15))
def test_roundtrip_property(dest, src, seq, rate_index, length_bytes, flags):
    header = LinkHeader(dest=dest, src=src, seq=seq, rate_index=rate_index,
                        length_bytes=length_bytes, flags=flags)
    parsed, crc_ok = LinkHeader.from_bits(header.to_bits())
    assert crc_ok and parsed == header
