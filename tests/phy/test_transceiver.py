"""End-to-end tests of the PHY pipeline (transmit -> channel -> receive)."""

import numpy as np
import pytest

from repro.channel import apply_channel
from repro.phy import Transceiver
from repro.phy.bits import random_bits
from repro.phy.snr import db_to_linear


@pytest.fixture(scope="module")
def phy():
    return Transceiver()


def _run(phy, payload, rate_index, snr_db, rng, gains=None,
         interference=None):
    tx = phy.transmit(payload, rate_index=rate_index)
    noise_var = db_to_linear(-snr_db)
    if gains is None:
        gains = np.ones(tx.layout.n_symbols, dtype=complex)
    rx_sym, gains = apply_channel(tx.symbols, gains, noise_var, rng,
                                  interference=interference)
    return tx, phy.receive(rx_sym, gains, tx.layout, tx_frame=tx)


class TestCleanDelivery:
    @pytest.mark.parametrize("rate_index,snr_db", [
        (0, 5), (1, 8), (2, 8), (3, 11), (4, 14), (5, 18),
    ])
    def test_delivers_at_adequate_snr(self, phy, rate_index, snr_db):
        rng = np.random.default_rng(rate_index)
        payload = random_bits(800, rng)
        tx, rx = _run(phy, payload, rate_index, snr_db, rng)
        assert rx.header_ok
        assert rx.header.rate_index == rate_index
        assert rx.crc_ok
        assert np.array_equal(rx.payload_bits, payload)
        assert rx.true_ber == 0.0

    def test_header_fields_roundtrip(self, phy):
        rng = np.random.default_rng(9)
        payload = random_bits(160, rng)
        tx = phy.transmit(payload, rate_index=2, dest=7, src=3, seq=1234)
        gains = np.ones(tx.layout.n_symbols, dtype=complex)
        rx_sym, gains = apply_channel(tx.symbols, gains,
                                      db_to_linear(-15), rng)
        rx = phy.receive(rx_sym, gains, tx.layout)
        assert rx.header_ok
        assert (rx.header.dest, rx.header.src, rx.header.seq) == (7, 3, 1234)
        assert rx.header.length_bytes == 20


class TestDegradedChannel:
    def test_low_snr_fails_crc_but_header_survives(self, phy):
        # The header goes at the lowest rate: there is an SNR band where
        # a QAM16 body is hopeless but the header still decodes — the
        # regime SoftRate's feedback depends on.
        rng = np.random.default_rng(10)
        payload = random_bits(800, rng)
        header_ok = crc_ok = 0
        for _ in range(10):
            _, rx = _run(phy, payload, 5, 6.0, rng)
            header_ok += rx.header_ok
            crc_ok += rx.crc_ok
        assert header_ok >= 9
        assert crc_ok <= 1

    def test_estimated_ber_tracks_truth(self, phy):
        from repro.core import frame_ber_estimate
        rng = np.random.default_rng(11)
        payload = random_bits(800, rng)
        est, true = [], []
        for _ in range(25):
            _, rx = _run(phy, payload, 3, 4.0, rng)
            est.append(frame_ber_estimate(rx.hints))
            true.append(rx.true_ber)
        assert np.mean(true) > 1e-3
        assert 0.25 < np.mean(est) / np.mean(true) < 4.0

    def test_error_free_frame_still_yields_ber_estimate(self, phy):
        # Key paper claim (section 3.1): the receiver can estimate the
        # channel BER even from frames with zero errors, and the
        # estimate falls as SNR rises.
        from repro.core import frame_ber_estimate
        rng = np.random.default_rng(12)
        payload = random_bits(400, rng)
        _, rx_mid = _run(phy, payload, 2, 9.0, rng)
        _, rx_high = _run(phy, payload, 2, 14.0, rng)
        assert rx_mid.true_ber == rx_high.true_ber == 0.0
        assert frame_ber_estimate(rx_mid.hints) > \
            frame_ber_estimate(rx_high.hints)

    def test_fade_inside_frame_visible_in_hints(self, phy):
        from repro.core import symbol_ber_profile
        rng = np.random.default_rng(13)
        payload = random_bits(1600, rng)
        tx = phy.transmit(payload, rate_index=3)
        n = tx.layout.n_symbols
        gains = np.ones(n, dtype=complex)
        body = tx.layout.body
        mid = (body.start + body.stop) // 2
        gains[mid:mid + 2] = 0.25       # a deep fade, two symbols long
        rx_sym, gains = apply_channel(tx.symbols, gains,
                                      db_to_linear(-11), rng)
        rx = phy.receive(rx_sym, gains, tx.layout, tx_frame=tx)
        profile = symbol_ber_profile(rx.hints, rx.info_symbol,
                                     rx.n_body_symbols)
        faded = mid - body.start
        clean = np.delete(profile, [faded, faded + 1])
        assert profile[faded] > 10 * clean.mean()


class TestSnrEstimate:
    def test_preamble_snr_close_to_truth(self, phy):
        rng = np.random.default_rng(14)
        payload = random_bits(400, rng)
        for snr_db in (5.0, 10.0, 15.0):
            estimates = [
                _run(phy, payload, 2, snr_db, rng)[1].snr_db
                for _ in range(5)
            ]
            assert np.mean(estimates) == pytest.approx(snr_db, abs=1.5)


class TestScrambling:
    def test_scrambler_transparent_end_to_end(self):
        rng = np.random.default_rng(15)
        payload = np.zeros(800, dtype=np.uint8)   # worst case: all zeros
        for scramble in (True, False):
            phy = Transceiver(scramble=scramble)
            tx, rx = _run(phy, payload, 2, 15.0, rng)
            assert rx.crc_ok
            assert np.array_equal(rx.payload_bits, payload)


class TestValidation:
    def test_symbol_shape_checked(self, phy):
        rng = np.random.default_rng(16)
        tx = phy.transmit(random_bits(160, rng), rate_index=0)
        with pytest.raises(ValueError):
            phy.receive(tx.symbols[:-1], np.ones(tx.layout.n_symbols),
                        tx.layout)

    def test_gain_length_checked(self, phy):
        rng = np.random.default_rng(17)
        tx = phy.transmit(random_bits(160, rng), rate_index=0)
        with pytest.raises(ValueError):
            phy.receive(tx.symbols, np.ones(3), tx.layout)
