"""Tests for the rate table (paper Tables 2 and 3)."""

from fractions import Fraction

import pytest

from repro.phy.rates import MODES, RATE_TABLE, Rate, RateTable


class TestTable2:
    def test_eight_rates(self):
        assert len(RATE_TABLE) == 8

    def test_exact_rows(self):
        rows = [(r.modulation, str(r.code_rate), r.mbps, r.in_prototype)
                for r in RATE_TABLE]
        assert rows == [
            ("BPSK", "1/2", 6.0, True),
            ("BPSK", "3/4", 9.0, True),
            ("QPSK", "1/2", 12.0, True),
            ("QPSK", "3/4", 18.0, True),
            ("QAM16", "1/2", 24.0, True),
            ("QAM16", "3/4", 36.0, True),
            ("QAM64", "1/2", 48.0, False),
            ("QAM64", "2/3", 54.0, False),
        ]

    def test_prototype_subset(self):
        subset = RATE_TABLE.prototype_subset()
        assert len(subset) == 6
        assert subset.highest.name == "QAM16 3/4"
        assert [r.index for r in subset] == list(range(6))

    def test_mbps_consistent_with_modulation(self):
        # 802.11 rate = 20 MHz-channel symbol rate scaled by
        # bits/symbol * code rate; proportionality holds for the six
        # prototype rates.  (The paper's Table 2 lists the QAM64 rows
        # with the standard 48/54 Mbps figures even though its
        # modulation/code-rate labels imply otherwise; we reproduce the
        # table verbatim and exclude those unimplemented rows here.)
        base = RATE_TABLE[0]
        for rate in RATE_TABLE.prototype_subset():
            expected = base.mbps * (rate.info_bits_per_subcarrier
                                    / base.info_bits_per_subcarrier)
            assert rate.mbps == pytest.approx(expected)

    def test_lookup_by_name(self):
        assert RATE_TABLE.by_name("QPSK 3/4").mbps == 18.0
        with pytest.raises(KeyError):
            RATE_TABLE.by_name("QAM256 7/8")

    def test_clamp(self):
        assert RATE_TABLE.clamp(-3) == 0
        assert RATE_TABLE.clamp(99) == len(RATE_TABLE) - 1
        assert RATE_TABLE.clamp(2) == 2


class TestAirtime:
    def test_airtime_inverse_to_rate(self):
        mode = MODES["simulation"]
        slow = mode.frame_airtime(RATE_TABLE[0], 8000)
        fast = mode.frame_airtime(RATE_TABLE[5], 8000)
        assert slow == pytest.approx(6 * fast, rel=0.05)

    def test_airtime_rounds_to_symbols(self):
        mode = MODES["simulation"]
        t = mode.frame_airtime(RATE_TABLE[0], 1)
        assert t == mode.symbol_time  # one bit still costs one symbol


class TestTable3:
    def test_modes_match_paper(self):
        lr = MODES["long_range"]
        assert (lr.bandwidth_hz, lr.n_subcarriers, lr.symbol_time) == \
            (500e3, 1024, 2.6e-3)
        sr = MODES["short_range"]
        assert (sr.bandwidth_hz, sr.n_subcarriers, sr.symbol_time) == \
            (4e6, 512, 160e-6)
        sim = MODES["simulation"]
        assert (sim.bandwidth_hz, sim.n_subcarriers, sim.symbol_time) == \
            (20e6, 128, 8e-6)


class TestRateTableValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RateTable([])

    def test_unordered_rejected(self):
        r1 = Rate(0, "QPSK", 2, Fraction(1, 2), 12.0)
        r2 = Rate(1, "BPSK", 1, Fraction(1, 2), 6.0)
        with pytest.raises(ValueError):
            RateTable([r1, r2])

    def test_reindexes(self):
        subset = RateTable([RATE_TABLE[2], RATE_TABLE[4]])
        assert [r.index for r in subset] == [0, 1]
