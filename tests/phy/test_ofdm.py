"""Tests for OFDM frame layout and the info-bit-to-symbol map."""

from fractions import Fraction

import numpy as np
import pytest

from repro.phy.convcode import ConvolutionalCode
from repro.phy.ofdm import info_bit_symbol_map, training_symbols
from repro.phy.transceiver import Transceiver


@pytest.fixture(scope="module")
def phy():
    return Transceiver()


class TestTrainingSymbols:
    def test_deterministic(self):
        a = training_symbols(2, 128)
        b = training_symbols(2, 128)
        assert np.array_equal(a, b)

    def test_unit_energy(self):
        t = training_symbols(4, 256)
        assert np.allclose(np.abs(t), 1.0)

    def test_readonly(self):
        t = training_symbols(2, 128)
        with pytest.raises(ValueError):
            t[0, 0] = 0


class TestLayout:
    def test_regions_tile_the_frame(self, phy):
        layout = phy.frame_layout(800, 3)
        regions = [layout.preamble, layout.header, layout.body]
        total = sum(r.stop - r.start for r in regions)
        total += layout.n_postamble_symbols
        assert total == layout.n_symbols
        assert layout.preamble.stop == layout.header.start
        assert layout.header.stop == layout.body.start

    def test_postamble_optional(self):
        phy = Transceiver(use_postamble=False)
        layout = phy.frame_layout(800, 0)
        assert layout.postamble is None
        assert layout.n_postamble_symbols == 0

    def test_body_capacity_fits_coded_bits(self, phy):
        for rate_index in range(6):
            layout = phy.frame_layout(1600, rate_index)
            block = (phy.rates[rate_index].bits_per_symbol
                     * layout.n_subcarriers)
            capacity = layout.n_body_symbols * block
            assert capacity == layout.n_body_coded_bits + layout.body_pad_bits
            assert 0 <= layout.body_pad_bits < block

    def test_higher_rate_fewer_symbols(self, phy):
        slow = phy.frame_layout(8000, 0).n_body_symbols
        fast = phy.frame_layout(8000, 5).n_body_symbols
        assert fast < slow
        assert slow == pytest.approx(6 * fast, rel=0.1)

    def test_airtime_positive_and_ordered(self, phy):
        t_slow = phy.frame_airtime(8000, 0)
        t_fast = phy.frame_airtime(8000, 5)
        assert 0 < t_fast < t_slow

    def test_unaligned_payload_rejected(self, phy):
        with pytest.raises(ValueError):
            phy.frame_layout(801, 0)


class TestInfoBitSymbolMap:
    @pytest.mark.parametrize("rate", [Fraction(1, 2), Fraction(2, 3),
                                      Fraction(3, 4)])
    def test_monotone_and_in_range(self, rate):
        code = ConvolutionalCode()
        mapping = info_bit_symbol_map(832, code.n_tail_bits, rate, 256)
        assert np.all(np.diff(mapping) >= 0)
        assert mapping.min() == 0

    def test_rate_half_mapping_exact(self):
        # At rate 1/2 bit k's first coded bit is at position 2k, so the
        # symbol index is exactly (2k) // block.
        code = ConvolutionalCode()
        mapping = info_bit_symbol_map(500, code.n_tail_bits,
                                      Fraction(1, 2), 128)
        expected = (2 * np.arange(500)) // 128
        assert np.array_equal(mapping, expected)

    def test_layout_map_covers_all_body_symbols(self):
        phy = Transceiver()
        layout = phy.frame_layout(1600, 3)
        symbols_used = np.unique(layout.info_symbol)
        # Every body symbol except possibly the padded tail must carry
        # at least one information bit.
        assert symbols_used[0] == 0
        assert symbols_used[-1] >= layout.n_body_symbols - 2
        assert layout.info_symbol.max() < layout.n_body_symbols
