"""Tests for the soft-output BCJR decoder (the SoftPHY hint source)."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy import bits as bitutil
from repro.phy.bcjr import bcjr_decode
from repro.phy.convcode import ConvolutionalCode, depuncture, puncture
from repro.phy.viterbi import viterbi_decode


def _to_llrs(coded_bits, magnitude=4.0):
    return magnitude * (2.0 * coded_bits.astype(np.float64) - 1.0)


def _noisy_llrs(coded_bits, snr_db, rng):
    """BPSK-over-AWGN channel LLRs with true statistics."""
    snr = 10 ** (snr_db / 10)
    x = 2.0 * coded_bits.astype(np.float64) - 1.0
    noise = rng.normal(0, np.sqrt(1 / (2 * snr)), size=x.size)
    y = x + noise
    return 4.0 * snr * y / 2.0 * 2.0 / 2.0  # 2y/sigma^2 with Es=1


@pytest.fixture(scope="module")
def code():
    return ConvolutionalCode()


class TestCleanDecoding:
    @pytest.mark.parametrize("variant", ["log-map", "max-log-map"])
    def test_recovers_clean_stream(self, code, variant):
        rng = np.random.default_rng(0)
        info = bitutil.random_bits(150, rng)
        result = bcjr_decode(code, _to_llrs(code.encode(info)), variant)
        assert np.array_equal(result.bits, info)

    def test_llr_signs_match_bits(self, code):
        rng = np.random.default_rng(1)
        info = bitutil.random_bits(100, rng)
        result = bcjr_decode(code, _to_llrs(code.encode(info)))
        assert np.array_equal((result.llrs >= 0).astype(np.uint8),
                              result.bits)

    def test_clean_input_high_confidence(self, code):
        rng = np.random.default_rng(2)
        info = bitutil.random_bits(100, rng)
        result = bcjr_decode(code, _to_llrs(code.encode(info), 8.0))
        assert np.abs(result.llrs).min() > 10.0

    @pytest.mark.parametrize("rate", [Fraction(2, 3), Fraction(3, 4)])
    def test_decodes_through_puncturing(self, code, rate):
        rng = np.random.default_rng(3)
        info = bitutil.random_bits(120, rng)
        coded = code.encode(info)
        llrs = depuncture(_to_llrs(puncture(coded, rate)), coded.size, rate)
        assert np.array_equal(bcjr_decode(code, llrs).bits, info)


class TestSoftness:
    def test_confidence_drops_near_weak_input(self, code):
        # Bits near a zeroed-out (erased) region must have lower
        # posterior confidence than bits in the clean region.
        rng = np.random.default_rng(4)
        info = bitutil.random_bits(300, rng)
        llrs = _to_llrs(code.encode(info))
        llrs[200:260] = 0.0
        result = bcjr_decode(code, llrs)
        hints = np.abs(result.llrs)
        weak = hints[100:130].mean()     # inside the erased bit range
        strong = hints[:50].mean()
        assert weak < strong

    def test_posterior_is_calibrated_on_awgn(self, code):
        # The average of p_k = 1/(1+e^|llr|) over many noisy frames
        # must approximate the actual bit error rate — the foundation
        # of the whole paper (Fig. 7).
        rng = np.random.default_rng(5)
        est, true = [], []
        for _ in range(30):
            info = bitutil.random_bits(200, rng)
            coded = code.encode(info)
            snr = 10 ** (0.5 / 10)  # 0.5 dB: a lossy operating point
            x = 2.0 * coded.astype(np.float64) - 1.0
            sigma2 = 1 / snr
            y = x + rng.normal(0, np.sqrt(sigma2 / 2), size=x.size)
            llrs = 4.0 * y / sigma2 * 0.5
            result = bcjr_decode(code, llrs)
            p = 1.0 / (1.0 + np.exp(np.abs(result.llrs)))
            est.append(p.mean())
            true.append(np.mean(result.bits != info))
        est_ber, true_ber = np.mean(est), np.mean(true)
        assert true_ber > 0, "operating point should produce errors"
        assert 0.3 < est_ber / true_ber < 3.0

    def test_matches_viterbi_decisions_at_high_confidence(self, code):
        rng = np.random.default_rng(6)
        info = bitutil.random_bits(200, rng)
        coded = code.encode(info).astype(np.float64)
        llrs = _to_llrs(coded, 3.0)
        llrs += rng.normal(0, 1.0, size=llrs.size)
        soft = bcjr_decode(code, llrs)
        hard = viterbi_decode(code, llrs)
        confident = np.abs(soft.llrs) > 5.0
        assert np.array_equal(soft.bits[confident], hard[confident])


class TestVariants:
    def test_max_log_close_to_log_map(self, code):
        rng = np.random.default_rng(7)
        info = bitutil.random_bits(150, rng)
        llrs = _to_llrs(code.encode(info), 2.0)
        llrs += rng.normal(0, 1.5, size=llrs.size)
        exact = bcjr_decode(code, llrs, "log-map")
        approx = bcjr_decode(code, llrs, "max-log-map")
        agree = np.mean(exact.bits == approx.bits)
        assert agree > 0.97

    def test_unknown_variant_rejected(self, code):
        with pytest.raises(ValueError):
            bcjr_decode(code, np.zeros(40), variant="turbo")


class TestValidation:
    def test_odd_length_rejected(self, code):
        with pytest.raises(ValueError):
            bcjr_decode(code, np.zeros(11))

    def test_too_short_rejected(self, code):
        with pytest.raises(ValueError):
            bcjr_decode(code, np.zeros(8))


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=1, max_value=100), st.integers(0, 2**32 - 1))
def test_clean_roundtrip_property(n_bits, seed):
    code = ConvolutionalCode()
    rng = np.random.default_rng(seed)
    info = bitutil.random_bits(n_bits, rng)
    result = bcjr_decode(code, _to_llrs(code.encode(info)))
    assert np.array_equal(result.bits, info)
