"""Tests for the per-symbol frequency interleaver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.interleaver import (deinterleave, interleave,
                                   interleaver_permutation)


class TestPermutation:
    @pytest.mark.parametrize("block,bps", [(128, 1), (128, 2), (256, 4),
                                           (512, 2), (768, 6)])
    def test_is_a_permutation(self, block, bps):
        perm = interleaver_permutation(block, bps)
        assert sorted(perm) == list(range(block))

    def test_spreads_adjacent_bits(self):
        # Adjacent coded bits must land on distant positions: the whole
        # point of interleaving is that a burst (frequency notch) does
        # not wipe consecutive coded bits.
        perm = interleaver_permutation(256, 2)
        inverse = np.empty_like(perm)
        inverse[perm] = np.arange(perm.size)
        gaps = np.abs(np.diff(inverse))
        assert np.median(gaps) >= 8

    def test_non_multiple_rejected(self):
        with pytest.raises(ValueError):
            interleaver_permutation(100, 2)


class TestRoundtrip:
    @pytest.mark.parametrize("block,bps", [(128, 1), (256, 2), (512, 4)])
    def test_roundtrip(self, block, bps):
        rng = np.random.default_rng(0)
        data = rng.normal(size=3 * block)
        out = deinterleave(interleave(data, block, bps), block, bps)
        assert np.array_equal(out, data)

    def test_blocks_are_independent(self):
        # Interleaving must not move bits across OFDM symbol boundaries
        # (interference detection depends on per-symbol locality).
        block = 128
        data = np.concatenate([np.zeros(block), np.ones(block)])
        mixed = interleave(data, block, 2)
        assert not mixed[:block].any()
        assert mixed[block:].all()

    def test_length_validated(self):
        with pytest.raises(ValueError):
            interleave(np.zeros(100), 128, 2)
        with pytest.raises(ValueError):
            deinterleave(np.zeros(100), 128, 2)


@settings(max_examples=20, deadline=None)
@given(st.sampled_from([1, 2, 4, 6]), st.sampled_from([64, 128, 256]),
       st.integers(1, 4), st.integers(0, 2**32 - 1))
def test_roundtrip_property(bps, n_subcarriers, n_blocks, seed):
    block = bps * n_subcarriers    # real layouts: block = bps * tones
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2, size=n_blocks * block).astype(np.uint8)
    out = deinterleave(interleave(data, block, bps), block, bps)
    assert np.array_equal(out, data)


def test_inconsistent_block_rejected():
    # A 128-bit block cannot be a 6-bit/symbol OFDM symbol.
    with pytest.raises(ValueError):
        interleaver_permutation(128, 6)
