"""RxResult.hints is shared state: consumers must not corrupt it.

One ``RxResult`` feeds several consumers — the rate adapter, the
interference detector, partial-packet recovery.  ``hints`` is computed
once, cached, and returned **read-only**, so a buggy consumer writing
into it fails loudly instead of silently shifting every later
consumer's view of the frame.
"""

import numpy as np
import pytest

from repro.channel.awgn import apply_channel, noise_var_for_snr_db
from repro.phy.transceiver import Transceiver


@pytest.fixture(scope="module")
def rx_result():
    phy = Transceiver()
    rng = np.random.default_rng(123)
    payload = rng.integers(0, 2, 104).astype(np.uint8)
    tx = phy.transmit(payload, 2)
    gains = np.ones(tx.layout.n_symbols, complex)
    rx_sym, g = apply_channel(tx.symbols, gains,
                              noise_var_for_snr_db(5.0), rng)
    return phy.receive(rx_sym, g, tx.layout, tx_frame=tx)


def test_hints_are_read_only(rx_result):
    hints = rx_result.hints
    with pytest.raises(ValueError):
        hints[0] = 0.0
    with pytest.raises(ValueError):
        hints *= 0.0
    with pytest.raises(ValueError):
        hints.sort()


def test_adapter_style_mutation_cannot_corrupt_shared_hints(rx_result):
    """A rate adapter clobbering its 'own' hints must not change what
    the next consumer sees."""
    before = rx_result.hints.copy()
    try:
        rx_result.hints[:] = 0.0          # buggy adapter
    except ValueError:
        pass
    assert np.array_equal(rx_result.hints, before)
    assert np.array_equal(rx_result.hints, np.abs(rx_result.llrs))


def test_hints_cached_and_consistent(rx_result):
    first = rx_result.hints
    assert rx_result.hints is first       # computed once
    assert np.array_equal(first, np.abs(rx_result.llrs))


def test_copy_is_writable_scratch(rx_result):
    scratch = rx_result.hints.copy()
    scratch[:] = 0.0                      # the documented escape hatch
    assert not np.array_equal(scratch, rx_result.hints)


def test_batch_results_have_read_only_hints():
    phy = Transceiver()
    rng = np.random.default_rng(7)
    payloads = rng.integers(0, 2, (3, 104)).astype(np.uint8)
    tx = phy.transmit_batch(payloads, 1)
    gains = np.ones((3, tx.layout.n_symbols), complex)
    for rx in phy.run_batch(tx, gains, noise_var_for_snr_db(6.0),
                            np.random.default_rng(8)):
        with pytest.raises(ValueError):
            rx.hints[0] = 1.0
