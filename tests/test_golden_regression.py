"""Golden-parity regression: refactors cannot shift paper curves.

``tests/golden/phy_ber_points.json`` pins per-frame BER estimates,
ground-truth BERs, and SNR estimates of small fig07/fig08-style runs
at fixed seeds; ``tests/golden/mac_throughput.json`` pins MAC-level
per-protocol throughput points of a small fixed contention scenario
under both PHY backends.  These tests replay the configuration stored
*inside* each fixture and assert the numbers match within a tight
tolerance — exact determinism modulo floating-point library variation
across platforms.

If a change is *supposed* to alter PHY numerics, regenerate with

    PYTHONPATH=src python tests/golden/regenerate.py

and call the curve shift out in the commit message.
"""

import json
import os

import numpy as np
import pytest

_GOLDEN_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "golden", "phy_ber_points.json")
_MAC_GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "golden", "mac_throughput.json")
_MESH_GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "golden", "mesh_chain.json")
_VIDEO_GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "golden", "video_qoe.json")

#: Tight but not bit-exact: exp/log implementations may differ in the
#: last ulp across platforms/BLAS builds, and BER estimates span ~60
#: decades, so tiny values are compared absolutely.
_RTOL = 1e-6
_ATOL = 1e-12


@pytest.fixture(scope="module")
def goldens():
    with open(_GOLDEN_PATH) as fh:
        return json.load(fh)


def _assert_close(name, got, want):
    got = np.asarray(got, dtype=float)
    want = np.asarray(want, dtype=float)
    assert got.shape == want.shape, \
        f"{name}: shape {got.shape} != golden {want.shape}"
    if not np.allclose(got, want, rtol=_RTOL, atol=_ATOL):
        bad = ~np.isclose(got, want, rtol=_RTOL, atol=_ATOL)
        idx = int(np.argmax(bad))
        raise AssertionError(
            f"{name}: {int(bad.sum())}/{bad.size} points shifted; "
            f"first at index {idx}: got {got.flat[idx]!r}, golden "
            f"{want.flat[idx]!r}.  If the change is intentional, "
            f"regenerate with tests/golden/regenerate.py")


def test_fig07_ber_points_match_golden(goldens):
    from repro.experiments.fig07_static import run_fig7

    config = goldens["fig07"]["config"]
    arrays = goldens["fig07"]["arrays"]
    data = run_fig7(seed=config["seed"],
                    payload_bits=config["payload_bits"],
                    frames_per_point=config["frames_per_point"],
                    snr_grid_db=np.asarray(config["snr_grid_db"]),
                    rate_indices=list(config["rate_indices"]))
    _assert_close("fig07.estimates", data.estimates,
                  arrays["estimates"])
    _assert_close("fig07.truths", data.truths, arrays["truths"])
    _assert_close("fig07.snr_estimates", data.snr_estimates,
                  arrays["snr_estimates"])
    assert np.array_equal(data.error_counts,
                          np.asarray(arrays["error_counts"]))
    assert np.array_equal(data.rate_indices,
                          np.asarray(arrays["rate_indices"]))


def test_fig07_golden_independent_of_batch_size(goldens):
    """The throughput knob cannot shift the goldens either."""
    from repro.experiments.fig07_static import run_fig7

    config = goldens["fig07"]["config"]
    arrays = goldens["fig07"]["arrays"]
    data = run_fig7(seed=config["seed"],
                    payload_bits=config["payload_bits"],
                    frames_per_point=config["frames_per_point"],
                    batch_size=1,
                    snr_grid_db=np.asarray(config["snr_grid_db"]),
                    rate_indices=list(config["rate_indices"]))
    _assert_close("fig07.estimates@batch1", data.estimates,
                  arrays["estimates"])


@pytest.fixture(scope="module")
def mac_golden():
    with open(_MAC_GOLDEN_PATH) as fh:
        return json.load(fh)


def _mac_point_ids():
    with open(_MAC_GOLDEN_PATH) as fh:
        return sorted(json.load(fh)["points"])


@pytest.mark.parametrize("point", _mac_point_ids())
def test_mac_throughput_point_matches_golden(mac_golden, point):
    """MAC-level golden: a contention scenario's throughput, frame
    counts and exact frame-log digest are pinned per (backend,
    protocol, engine) — a MAC, rate-adaptation or backend refactor
    cannot silently shift the paper's contention results, on either
    the event-driven or the slot-synchronous engine."""
    import sys

    sys.path.insert(0, os.path.join(os.path.dirname(
        os.path.abspath(__file__)), "golden"))
    try:
        from regenerate import compute_mac_point
    finally:
        sys.path.pop(0)

    parts = point.split("/")
    backend, protocol = parts[0], parts[1]
    engine = parts[2] if len(parts) > 2 else "event"
    want = mac_golden["points"][point]
    got = compute_mac_point(mac_golden["config"], backend, protocol,
                            engine)
    assert got["per_client_frames"] == want["per_client_frames"], \
        f"{point}: delivered frame counts shifted"
    assert got["n_attempts"] == want["n_attempts"], \
        f"{point}: transmission attempt count shifted"
    # The exact frame-log digest (float timestamps via repr) is only
    # pinned for the table-driven surrogate; under the full BCJR
    # pipeline a last-ulp libm/BLAS difference across platforms could
    # legitimately shift it (the same reason _RTOL exists above).
    if backend == "surrogate":
        assert got["frame_log_digest"] == want["frame_log_digest"], \
            f"{point}: frame logs shifted (regenerate if intentional)"
    assert got["aggregate_mbps"] == \
        pytest.approx(want["aggregate_mbps"], rel=_RTOL)


@pytest.fixture(scope="module")
def mesh_golden():
    with open(_MESH_GOLDEN_PATH) as fh:
        return json.load(fh)


def _mesh_point_ids():
    with open(_MESH_GOLDEN_PATH) as fh:
        return sorted(json.load(fh)["points"])


def _golden_module():
    import importlib
    import sys

    sys.path.insert(0, os.path.join(os.path.dirname(
        os.path.abspath(__file__)), "golden"))
    try:
        return importlib.import_module("regenerate")
    finally:
        sys.path.pop(0)


@pytest.mark.parametrize("point", _mesh_point_ids())
def test_mesh_chain_point_matches_golden(mesh_golden, point):
    """Mesh-level golden: a fixed 2-hop relay chain's frame counts,
    hop counts and exact frame-log digest are pinned per (backend,
    protocol) — a geometry, channel or forwarding refactor cannot
    silently shift multi-hop results."""
    compute_mesh_point = _golden_module().compute_mesh_point

    backend, protocol = point.split("/")
    want = mesh_golden["points"][point]
    got = compute_mesh_point(mesh_golden["config"], backend, protocol)
    assert got["originated"] == want["originated"], \
        f"{point}: originated packet count shifted"
    assert got["delivered"] == want["delivered"], \
        f"{point}: end-to-end delivery count shifted"
    assert got["hop_counts"] == want["hop_counts"], \
        f"{point}: delivered hop counts shifted"
    assert got["n_attempts"] == want["n_attempts"], \
        f"{point}: transmission attempt count shifted"
    # Same policy as the MAC golden: the exact digest is pinned only
    # for the table-driven surrogate backend (see comment above).
    if backend == "surrogate":
        assert got["frame_log_digest"] == want["frame_log_digest"], \
            f"{point}: frame logs shifted (regenerate if intentional)"
    assert got["goodput_mbps"] == \
        pytest.approx(want["goodput_mbps"], rel=_RTOL)


@pytest.fixture(scope="module")
def video_golden():
    with open(_VIDEO_GOLDEN_PATH) as fh:
        return json.load(fh)


def _video_point_ids():
    with open(_VIDEO_GOLDEN_PATH) as fh:
        return sorted(json.load(fh)["points"])


@pytest.mark.parametrize("backend", _video_point_ids())
def test_video_qoe_point_matches_golden(video_golden, backend):
    """Video-level golden: the rateless-vs-ARQ QoE point of a tiny
    pinned workload — decodable-frame rates, rebuffer times, packet
    counts and exact decode-time digests per backend — so a fountain-
    codec, salvage-rule or streaming-loop refactor cannot silently
    shift the video comparison."""
    compute_video_point = _golden_module().compute_video_point

    want = video_golden["points"][backend]
    got = compute_video_point(video_golden["config"], backend)
    assert sorted(got) == sorted(want), \
        f"video/{backend}: metric set changed"
    for key in ("arq/packets", "rateless/packets",
                "rateless/poisoned_frames"):
        assert got[key] == want[key], f"video/{backend}: {key} shifted"
    # Decode-time digests are exact on the surrogate; under the full
    # BCJR pipeline a last-ulp libm difference could legitimately move
    # a marginal frame (same policy as the MAC/mesh goldens).
    if backend == "surrogate":
        for key in ("arq/digest", "rateless/digest"):
            assert got[key] == want[key], \
                f"video/{backend}: {key} shifted (regenerate if " \
                f"intentional)"
    for key in want:
        if key.endswith("digest"):
            continue
        assert got[key] == pytest.approx(want[key], rel=_RTOL,
                                         abs=_ATOL), \
            f"video/{backend}: {key} shifted"


def test_fig08_ber_points_match_golden(goldens):
    from repro.experiments.fig08_mobile import run_fig8

    config = goldens["fig08"]["config"]
    arrays = goldens["fig08"]["arrays"]
    data = run_fig8(seed=config["seed"],
                    payload_bits=config["payload_bits"],
                    n_frames=config["n_frames"],
                    rate_index=config["rate_index"])
    assert sorted(data.estimates) == sorted(arrays)
    for label in sorted(arrays):
        _assert_close(f"fig08.{label}.estimates",
                      data.estimates[label],
                      arrays[label]["estimates"])
        _assert_close(f"fig08.{label}.truths", data.truths[label],
                      arrays[label]["truths"])
        _assert_close(f"fig08.{label}.snrs", data.snrs[label],
                      arrays[label]["snrs"])
