"""Tests for binning, metrics, and table rendering."""

import numpy as np
import pytest

from repro.analysis.binning import aggregate_bits_per_bin, log_bin_ber
from repro.analysis.metrics import (ccdf, rate_selection_accuracy,
                                    run_lengths)
from repro.analysis.tables import format_table
from repro.sim.mac import FrameLogEntry
from repro.traces.synthetic import constant_trace


class TestLogBinning:
    def test_bins_by_decade(self):
        estimates = [1e-3] * 5 + [1e-1] * 5
        truths = [2e-3] * 5 + [5e-2] * 5
        bins = log_bin_ber(estimates, truths, decades_per_bin=1.0)
        assert len(bins) == 2
        assert bins[0].mean_true == pytest.approx(2e-3)
        assert bins[1].mean_true == pytest.approx(5e-2)

    def test_min_frames_filter(self):
        bins = log_bin_ber([1e-3, 1e-1], [1e-3, 1e-1],
                           decades_per_bin=1.0, min_frames=3)
        assert bins == []

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            log_bin_ber([1e-3], [1e-3, 1e-2])

    def test_empty(self):
        assert log_bin_ber([], []) == []


class TestAggregateBits:
    def test_resolves_below_per_frame_limit(self):
        # 1000 frames of 1000 bits with 1 total error: aggregated BER
        # 1e-6, unmeasurable per frame.
        estimates = [1e-6] * 1000
        errors = [0] * 999 + [1]
        result = aggregate_bits_per_bin(estimates, errors, 1000,
                                        decades_per_bin=1.0)
        assert len(result) == 1
        _center, true_ber, total_bits = result[0]
        assert total_bits == 1_000_000
        assert true_ber == pytest.approx(1e-6)


class TestRateAccuracy:
    def test_classification(self):
        trace = constant_trace(best_rate=3, duration=1.0)
        log = [
            FrameLogEntry(time=0.1, src=1, dest=0, rate_index=3,
                          kind="clean", delivered=True, retry=0),
            FrameLogEntry(time=0.2, src=1, dest=0, rate_index=5,
                          kind="clean", delivered=False, retry=0),
            FrameLogEntry(time=0.3, src=1, dest=0, rate_index=1,
                          kind="clean", delivered=True, retry=0),
            FrameLogEntry(time=0.4, src=1, dest=0, rate_index=3,
                          kind="clean", delivered=True, retry=0),
        ]
        acc = rate_selection_accuracy(log, trace)
        assert acc.accurate == pytest.approx(0.5)
        assert acc.overselect == pytest.approx(0.25)
        assert acc.underselect == pytest.approx(0.25)
        assert acc.n_frames == 4

    def test_blackout_frames_skipped(self):
        trace = constant_trace(best_rate=3, duration=1.0)
        trace.delivered[:, :] = False
        log = [FrameLogEntry(time=0.1, src=1, dest=0, rate_index=3,
                             kind="clean", delivered=False, retry=0)]
        acc = rate_selection_accuracy(log, trace)
        assert acc.n_frames == 0


class TestRunLengths:
    def test_basic(self):
        events = [True, True, False, True, False, True, True, True]
        assert run_lengths(events) == [2, 1, 3]

    def test_trailing_run_counted(self):
        assert run_lengths([False, True]) == [1]

    def test_empty(self):
        assert run_lengths([]) == []

    def test_ccdf(self):
        points = ccdf([1, 1, 2, 3])
        assert points[0] == (1, 1.0)
        assert points[1] == (2, 0.5)
        assert points[2] == (3, 0.25)

    def test_ccdf_empty(self):
        assert ccdf([]) == []


class TestFormatTable:
    def test_aligned_output(self):
        table = format_table(["name", "value"],
                             [["a", 1.0], ["long-name", 123456.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) <= len(lines[1]) + 2 for line in lines)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_float_formatting(self):
        table = format_table(["x"], [[1.5e-7]])
        assert "1.50e-07" in table


class TestGroupRows:
    def _rows(self):
        return [
            {"index": i, "scenario_id": f"s{i}", "seed": i,
             "protocol": p, "n_clients": n, "mbps": float(i),
             "conv": None if i == 0 else float(i)}
            for i, (p, n) in enumerate(
                (p, n) for n in (1, 2, 16) for p in ("b", "a"))]

    def test_numeric_keys_sort_numerically(self):
        from repro.analysis.aggregate import group_rows
        groups = group_rows(self._rows(), ["n_clients"])
        assert [g["n_clients"] for g in groups] == [1, 2, 16]

    def test_string_keys_sort_lexicographically(self):
        from repro.analysis.aggregate import group_rows
        groups = group_rows(self._rows(), ["protocol"])
        assert [g["protocol"] for g in groups] == ["a", "b"]

    def test_default_metrics_exclude_string_columns(self):
        from repro.analysis.aggregate import group_rows
        groups = group_rows(self._rows(), ["n_clients"])
        assert "protocol" not in set(groups[0]) - {"n_clients", "n"}
        assert "mbps" in groups[0]

    def test_none_means_all_nan(self):
        from repro.analysis.aggregate import group_rows
        rows = [{"k": 1, "m": None}, {"k": 1, "m": None}]
        groups = group_rows(rows, ["k"], ["m"])
        assert groups == [{"k": 1, "n": 2, "m": None}]

    def test_nan_aware_mean_skips_missing(self):
        from repro.analysis.aggregate import group_rows
        rows = [{"k": 1, "m": 2.0}, {"k": 1, "m": None},
                {"k": 1, "m": 4.0}]
        groups = group_rows(rows, ["k"], ["m"])
        assert groups[0]["m"] == 3.0

    def test_explicit_metrics_respected(self):
        from repro.analysis.aggregate import group_rows
        groups = group_rows(self._rows(), ["protocol"],
                            ["mbps"])
        assert set(groups[0]) == {"protocol", "n", "mbps"}


class TestSettlingTime:
    def _log(self, rates, dt=0.01):
        from repro.sim.mac import FrameLogEntry
        return [FrameLogEntry(time=i * dt, src=1, dest=0,
                              rate_index=r, kind="clean",
                              delivered=True, retry=0)
                for i, r in enumerate(rates)]

    def test_immediate_settle_is_zero(self):
        from repro.analysis.metrics import settling_time
        log = self._log([3] * 30)
        assert settling_time(log) == 0.0

    def test_settles_after_transient(self):
        from repro.analysis.metrics import settling_time
        log = self._log([1, 2] * 6 + [3] * 40)
        t = settling_time(log)
        # 12-frame transient; the first window with >= 80% target
        # frames starts inside it, but strictly after frame 0.
        assert 0.0 < t <= 0.12 + 1e-12

    def test_persistent_oscillation_is_nan(self):
        """Ending on the modal rate must not count as settling."""
        import math
        from repro.analysis.metrics import settling_time
        log = self._log([3, 4] * 30 + [3])
        assert math.isnan(settling_time(log))

    def test_short_log_uses_clamped_full_window(self):
        import math
        from repro.analysis.metrics import settling_time
        assert settling_time(self._log([5] * 6)) == 0.0
        assert math.isnan(settling_time(self._log([5, 4] * 3)))

    def test_empty_log_is_nan(self):
        import math
        from repro.analysis.metrics import settling_time
        assert math.isnan(settling_time([]))
