"""Tests for binning, metrics, and table rendering."""

import numpy as np
import pytest

from repro.analysis.binning import aggregate_bits_per_bin, log_bin_ber
from repro.analysis.metrics import (ccdf, rate_selection_accuracy,
                                    run_lengths)
from repro.analysis.tables import format_table
from repro.sim.mac import FrameLogEntry
from repro.traces.synthetic import constant_trace


class TestLogBinning:
    def test_bins_by_decade(self):
        estimates = [1e-3] * 5 + [1e-1] * 5
        truths = [2e-3] * 5 + [5e-2] * 5
        bins = log_bin_ber(estimates, truths, decades_per_bin=1.0)
        assert len(bins) == 2
        assert bins[0].mean_true == pytest.approx(2e-3)
        assert bins[1].mean_true == pytest.approx(5e-2)

    def test_min_frames_filter(self):
        bins = log_bin_ber([1e-3, 1e-1], [1e-3, 1e-1],
                           decades_per_bin=1.0, min_frames=3)
        assert bins == []

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            log_bin_ber([1e-3], [1e-3, 1e-2])

    def test_empty(self):
        assert log_bin_ber([], []) == []


class TestAggregateBits:
    def test_resolves_below_per_frame_limit(self):
        # 1000 frames of 1000 bits with 1 total error: aggregated BER
        # 1e-6, unmeasurable per frame.
        estimates = [1e-6] * 1000
        errors = [0] * 999 + [1]
        result = aggregate_bits_per_bin(estimates, errors, 1000,
                                        decades_per_bin=1.0)
        assert len(result) == 1
        _center, true_ber, total_bits = result[0]
        assert total_bits == 1_000_000
        assert true_ber == pytest.approx(1e-6)


class TestRateAccuracy:
    def test_classification(self):
        trace = constant_trace(best_rate=3, duration=1.0)
        log = [
            FrameLogEntry(time=0.1, src=1, dest=0, rate_index=3,
                          kind="clean", delivered=True, retry=0),
            FrameLogEntry(time=0.2, src=1, dest=0, rate_index=5,
                          kind="clean", delivered=False, retry=0),
            FrameLogEntry(time=0.3, src=1, dest=0, rate_index=1,
                          kind="clean", delivered=True, retry=0),
            FrameLogEntry(time=0.4, src=1, dest=0, rate_index=3,
                          kind="clean", delivered=True, retry=0),
        ]
        acc = rate_selection_accuracy(log, trace)
        assert acc.accurate == pytest.approx(0.5)
        assert acc.overselect == pytest.approx(0.25)
        assert acc.underselect == pytest.approx(0.25)
        assert acc.n_frames == 4

    def test_blackout_frames_skipped(self):
        trace = constant_trace(best_rate=3, duration=1.0)
        trace.delivered[:, :] = False
        log = [FrameLogEntry(time=0.1, src=1, dest=0, rate_index=3,
                             kind="clean", delivered=False, retry=0)]
        acc = rate_selection_accuracy(log, trace)
        assert acc.n_frames == 0


class TestRunLengths:
    def test_basic(self):
        events = [True, True, False, True, False, True, True, True]
        assert run_lengths(events) == [2, 1, 3]

    def test_trailing_run_counted(self):
        assert run_lengths([False, True]) == [1]

    def test_empty(self):
        assert run_lengths([]) == []

    def test_ccdf(self):
        points = ccdf([1, 1, 2, 3])
        assert points[0] == (1, 1.0)
        assert points[1] == (2, 0.5)
        assert points[2] == (3, 0.25)

    def test_ccdf_empty(self):
        assert ccdf([]) == []


class TestFormatTable:
    def test_aligned_output(self):
        table = format_table(["name", "value"],
                             [["a", 1.0], ["long-name", 123456.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) <= len(lines[1]) + 2 for line in lines)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_float_formatting(self):
        table = format_table(["x"], [[1.5e-7]])
        assert "1.50e-07" in table
