"""Video QoE metrics: decodable rate, cascading rebuffer, misses."""

import math

import pytest

from repro.analysis.metrics import (deadline_miss_ratio,
                                    decodable_frame_rate,
                                    rebuffer_time)


def test_decodable_frame_rate():
    assert decodable_frame_rate([0.1, None, 0.3, None]) == 0.5
    assert decodable_frame_rate([None, None]) == 0.0
    assert decodable_frame_rate([0.0, 1.0]) == 1.0
    assert math.isnan(decodable_frame_rate([]))


def test_rebuffer_time_cascades_delay():
    # Frame 0 arrives 0.2 s late; the carried delay absorbs frame 1's
    # otherwise-late arrival, so only the first stall counts.
    deadlines = [1.0, 2.0, 3.0]
    times = [1.2, 2.1, 3.0]
    assert rebuffer_time(times, deadlines) == pytest.approx(0.2)
    # A second, deeper stall adds only its excess over the delay.
    times = [1.2, 2.5, 3.0]
    assert rebuffer_time(times, deadlines) == pytest.approx(0.5)


def test_rebuffer_time_skips_dropped_frames():
    assert rebuffer_time([None, 2.0], [1.0, 2.0]) == 0.0
    assert rebuffer_time([None, 2.4], [1.0, 2.0]) \
        == pytest.approx(0.4)


def test_rebuffer_time_zero_when_on_time():
    assert rebuffer_time([0.5, 1.5], [1.0, 2.0]) == 0.0


def test_deadline_miss_ratio_counts_none_and_late():
    deadlines = [1.0, 2.0, 3.0, 4.0]
    times = [0.9, None, 3.5, 4.0]
    assert deadline_miss_ratio(times, deadlines) == 0.5
    assert math.isnan(deadline_miss_ratio([], []))


def test_metrics_reject_misaligned_inputs():
    with pytest.raises(ValueError):
        rebuffer_time([1.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        deadline_miss_ratio([1.0], [1.0, 2.0])
