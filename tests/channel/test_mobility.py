"""Tests for walking-mobility channel trajectories."""

import numpy as np
import pytest

from repro.channel.mobility import WalkingTrajectory


@pytest.fixture()
def trajectory():
    return WalkingTrajectory(np.random.default_rng(0))


class TestLargeScale:
    def test_distance_grows(self, trajectory):
        assert trajectory.distance(10.0) > trajectory.distance(0.0)

    def test_mean_snr_decays_when_walking_away(self, trajectory):
        assert trajectory.mean_snr_db(10.0) < trajectory.mean_snr_db(0.0)

    def test_walking_towards_improves(self):
        towards = WalkingTrajectory(np.random.default_rng(1), speed=-0.5,
                                    start_distance=20.0)
        assert towards.mean_snr_db(10.0) > towards.mean_snr_db(0.0)

    def test_distance_floor(self):
        t = WalkingTrajectory(np.random.default_rng(2), speed=-10.0,
                              start_distance=1.0)
        assert t.distance(100.0) == 0.5


class TestSmallScale:
    def test_symbol_gains_embed_mean_snr(self, trajectory):
        # Average |gain|^2 over many fading realisations approximates
        # the linear mean SNR (noise variance normalised to 1).
        rng = np.random.default_rng(3)
        t0 = 2.0
        target = 10 ** (trajectory.mean_snr_db(t0) / 10)
        powers = []
        for seed in range(40):
            traj = WalkingTrajectory(np.random.default_rng(seed))
            g = traj.symbol_gains(t0, 50, 160e-6)
            powers.append(np.mean(np.abs(g) ** 2))
        assert np.mean(powers) == pytest.approx(target, rel=0.25)

    def test_fades_present(self, trajectory):
        # Over several coherence times the instantaneous SNR must swing
        # by tens of dB (Fig. 1's fades).
        snrs = [trajectory.instantaneous_snr_db(t)
                for t in np.linspace(0, 2.0, 400)]
        assert max(snrs) - min(snrs) > 15.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WalkingTrajectory(np.random.default_rng(0), start_distance=0.0)
