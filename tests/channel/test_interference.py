"""Tests for the interference overlay."""

import numpy as np
import pytest

from repro.channel.interference import (interference_for_frame,
                                        overlay_interference)


class TestInterferenceForFrame:
    def test_power_in_range(self):
        rng = np.random.default_rng(0)
        intf = interference_for_frame(100, 128, 20, 80, 0.5, rng)
        hit = intf[20:80]
        assert np.mean(np.abs(hit) ** 2) == pytest.approx(0.5, rel=0.1)

    def test_zero_outside_range(self):
        rng = np.random.default_rng(1)
        intf = interference_for_frame(50, 64, 10, 30, 1.0, rng)
        assert not intf[:10].any()
        assert not intf[30:].any()

    def test_empty_span_allowed(self):
        rng = np.random.default_rng(2)
        intf = interference_for_frame(10, 8, 5, 5, 1.0, rng)
        assert not intf.any()

    def test_bad_range_rejected(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            interference_for_frame(10, 8, 5, 12, 1.0, rng)
        with pytest.raises(ValueError):
            interference_for_frame(10, 8, -1, 5, 1.0, rng)
        with pytest.raises(ValueError):
            interference_for_frame(10, 8, 2, 5, -1.0, rng)


class TestOverlay:
    def test_tail_alignment(self):
        rng = np.random.default_rng(4)
        _, (start, end) = overlay_interference(20, 64, 0.0, rng,
                                               overlap_fraction=0.25,
                                               align="tail")
        assert end == 20
        assert start == 15

    def test_head_alignment(self):
        rng = np.random.default_rng(5)
        _, (start, end) = overlay_interference(20, 64, 0.0, rng,
                                               overlap_fraction=0.5,
                                               align="head")
        assert start == 0 and end == 10

    def test_random_alignment_in_bounds(self):
        rng = np.random.default_rng(6)
        for _ in range(20):
            _, (start, end) = overlay_interference(
                20, 64, 0.0, rng, overlap_fraction=0.3, align="random")
            assert 0 <= start < end <= 20

    def test_relative_power_db(self):
        rng = np.random.default_rng(7)
        intf, (start, end) = overlay_interference(
            40, 128, -10.0, rng, overlap_fraction=1.0, align="head",
            signal_power=2.0)
        measured = np.mean(np.abs(intf[start:end]) ** 2)
        assert measured == pytest.approx(0.2, rel=0.1)

    def test_validation(self):
        rng = np.random.default_rng(8)
        with pytest.raises(ValueError):
            overlay_interference(10, 8, 0.0, rng, overlap_fraction=0.0)
        with pytest.raises(ValueError):
            overlay_interference(10, 8, 0.0, rng, align="sideways")
