"""Tests for AWGN and the per-symbol channel application."""

import numpy as np
import pytest

from repro.channel.awgn import apply_channel, awgn, noise_var_for_snr_db


class TestAwgn:
    def test_power_matches_variance(self):
        rng = np.random.default_rng(0)
        noise = awgn(100_000, 0.3, rng)
        assert np.mean(np.abs(noise) ** 2) == pytest.approx(0.3, rel=0.03)

    def test_circular_symmetry(self):
        rng = np.random.default_rng(1)
        noise = awgn(100_000, 1.0, rng)
        assert np.mean(noise.real ** 2) == pytest.approx(0.5, rel=0.05)
        assert np.mean(noise.imag ** 2) == pytest.approx(0.5, rel=0.05)
        assert abs(np.mean(noise.real * noise.imag)) < 0.01

    def test_noise_var_for_snr(self):
        assert noise_var_for_snr_db(10.0) == pytest.approx(0.1)
        assert noise_var_for_snr_db(0.0) == pytest.approx(1.0)


class TestApplyChannel:
    def test_gains_applied_per_symbol(self):
        rng = np.random.default_rng(2)
        tx = np.ones((3, 4), dtype=complex)
        gains = np.array([1.0, 0.5, 2.0], dtype=complex)
        rx, out_gains = apply_channel(tx, gains, 1e-12, rng)
        assert np.allclose(rx[0], 1.0)
        assert np.allclose(rx[1], 0.5)
        assert np.allclose(rx[2], 2.0)
        assert np.array_equal(out_gains, gains)

    def test_interference_added(self):
        rng = np.random.default_rng(3)
        tx = np.zeros((2, 4), dtype=complex)
        intf = np.ones((2, 4), dtype=complex)
        rx, _ = apply_channel(tx, np.ones(2), 1e-12, rng,
                              interference=intf)
        assert np.allclose(rx, 1.0, atol=1e-4)

    def test_gain_shape_checked(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            apply_channel(np.zeros((3, 4), dtype=complex), np.ones(2),
                          0.1, rng)

    def test_interference_shape_checked(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            apply_channel(np.zeros((3, 4), dtype=complex), np.ones(3),
                          0.1, rng, interference=np.zeros((2, 4)))
