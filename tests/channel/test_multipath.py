"""Tests for the frequency-selective multipath channel."""

import numpy as np
import pytest

from repro.channel.multipath import FrequencySelectiveChannel


class TestStatistics:
    def test_unit_average_power(self):
        powers = []
        for seed in range(30):
            ch = FrequencySelectiveChannel(
                128, np.random.default_rng(seed), n_taps=4)
            g = ch.gains(0.0, 10, 8e-6)
            powers.append(np.mean(np.abs(g) ** 2))
        assert np.mean(powers) == pytest.approx(1.0, abs=0.15)

    def test_shape(self):
        ch = FrequencySelectiveChannel(64, np.random.default_rng(0))
        assert ch.gains(0.0, 7, 8e-6).shape == (7, 64)

    def test_single_tap_is_flat(self):
        ch = FrequencySelectiveChannel(128, np.random.default_rng(1),
                                       n_taps=1)
        g = ch.gains(0.0, 3, 8e-6)
        # One tap: every subcarrier sees the same gain.
        assert np.allclose(g, g[:, :1])

    def test_multitap_is_selective(self):
        ch = FrequencySelectiveChannel(128, np.random.default_rng(2),
                                       n_taps=8)
        g = ch.gains(0.0, 1, 8e-6)[0]
        magnitudes = np.abs(g)
        assert magnitudes.max() / max(magnitudes.min(), 1e-9) > 3.0

    def test_adjacent_subcarriers_correlated(self):
        # Within a coherence bandwidth, neighbours fade together —
        # the reason the interleaver maps adjacent coded bits to
        # distant subcarriers.
        ch = FrequencySelectiveChannel(256, np.random.default_rng(3),
                                       n_taps=8)
        g = ch.gains(0.0, 1, 8e-6)[0]
        adjacent = np.abs(np.diff(np.abs(g))).mean()
        distant = np.abs(np.abs(g[: 128]) - np.abs(g[128:])).mean()
        assert adjacent < distant

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            FrequencySelectiveChannel(64, rng, n_taps=0)
        with pytest.raises(ValueError):
            FrequencySelectiveChannel(4, rng, n_taps=8)
        with pytest.raises(ValueError):
            FrequencySelectiveChannel(64, rng, power_decay=0.0)


class TestEndToEnd:
    def test_interleaver_rescues_selective_fading(self):
        """The section-4 motivation: frequency interleaving converts
        contiguous notch damage into scattered, correctable errors."""
        from repro.channel.awgn import apply_channel
        from repro.phy.snr import db_to_linear
        from repro.phy.transceiver import Transceiver

        rng = np.random.default_rng(0)
        payload = rng.integers(0, 2, 1600).astype(np.uint8)
        delivered = {}
        for use_interleaver in (True, False):
            phy = Transceiver(use_interleaver=use_interleaver)
            tx = phy.transmit(payload, rate_index=3)
            count = 0
            for seed in range(10):
                channel = FrequencySelectiveChannel(
                    128, np.random.default_rng(seed + 100), n_taps=10,
                    doppler_hz=5.0)
                gains = channel.gains(0.0, tx.layout.n_symbols,
                                      phy.mode.symbol_time)
                rx_sym, g = apply_channel(
                    tx.symbols, gains, db_to_linear(-13.0),
                    np.random.default_rng(seed))
                rx = phy.receive(rx_sym, g, tx.layout, tx_frame=tx)
                count += rx.crc_ok
            delivered[use_interleaver] = count
        assert delivered[True] >= delivered[False] + 3
