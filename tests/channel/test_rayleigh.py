"""Tests for the Zheng-Xiao Rayleigh fading simulator."""

import numpy as np
import pytest

from repro.channel.rayleigh import (RayleighFadingProcess, coherence_time,
                                    doppler_for_coherence)


class TestCoherenceTime:
    def test_inverse_pair(self):
        assert doppler_for_coherence(coherence_time(40.0)) == \
            pytest.approx(40.0)

    def test_paper_rules_of_thumb(self):
        # Paper footnote 2: Doppler 40 Hz -> ~10 ms coherence;
        # 4 kHz -> ~100 us.
        assert coherence_time(40.0) == pytest.approx(10e-3, rel=0.1)
        assert coherence_time(4000.0) == pytest.approx(100e-6, rel=0.1)

    def test_positive_required(self):
        with pytest.raises(ValueError):
            coherence_time(0.0)


class TestFadingStatistics:
    def test_unit_average_power(self):
        rng = np.random.default_rng(0)
        powers = []
        for _ in range(30):
            process = RayleighFadingProcess(100.0, rng)
            t = np.linspace(0, 5.0, 2000)
            powers.append(np.mean(np.abs(process.gains(t)) ** 2))
        assert np.mean(powers) == pytest.approx(1.0, abs=0.1)

    def test_rayleigh_envelope(self):
        # |h| must be Rayleigh distributed: P(|h| < 0.5) ~ 22%,
        # P(|h| > 1.5) ~ 10.5% for unit mean power.
        rng = np.random.default_rng(1)
        samples = []
        for _ in range(50):
            process = RayleighFadingProcess(200.0, rng)
            t = np.linspace(0, 2.0, 400)
            samples.append(np.abs(process.gains(t)))
        env = np.concatenate(samples)
        assert np.mean(env < 0.5) == pytest.approx(1 - np.exp(-0.25),
                                                   abs=0.05)
        assert np.mean(env > 1.5) == pytest.approx(np.exp(-2.25), abs=0.05)

    def test_correlation_follows_coherence_time(self):
        rng = np.random.default_rng(2)
        doppler = 100.0
        tc = coherence_time(doppler)

        def avg_corr(lag):
            vals = []
            for _ in range(40):
                p = RayleighFadingProcess(doppler, rng)
                t = np.arange(0, 1.0, tc / 5)
                h = p.gains(t)
                h2 = p.gains(t + lag)
                num = np.abs(np.mean(h * np.conj(h2)))
                den = np.mean(np.abs(h) ** 2)
                vals.append(num / den)
            return np.mean(vals)

        # Within a small fraction of the coherence time the channel is
        # nearly unchanged; several coherence times later it is not.
        assert avg_corr(tc / 20) > 0.9
        assert avg_corr(5 * tc) < 0.5

    def test_deterministic_given_realisation(self):
        rng = np.random.default_rng(3)
        p = RayleighFadingProcess(40.0, rng)
        t = np.linspace(0, 1, 100)
        assert np.array_equal(p.gains(t), p.gains(t))

    def test_symbol_gains_shape(self):
        rng = np.random.default_rng(4)
        p = RayleighFadingProcess(40.0, rng)
        g = p.symbol_gains(0.5, 20, 8e-6)
        assert g.shape == (20,)
        assert g[0] == p.gains(np.array([0.5]))[0]

    def test_validation(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            RayleighFadingProcess(-1.0, rng)
        with pytest.raises(ValueError):
            RayleighFadingProcess(40.0, rng, n_sinusoids=2)
