"""Tests for the log-distance path loss model and its optional
log-normal shadowing term."""

import numpy as np
import pytest

from repro.channel.pathloss import LogDistancePathLoss


class TestLogDistance:
    def test_reference_point(self):
        model = LogDistancePathLoss(exponent=3.0, reference_loss_db=40.0)
        assert model.loss_db(1.0) == pytest.approx(40.0)

    def test_slope(self):
        model = LogDistancePathLoss(exponent=3.0, reference_loss_db=40.0)
        assert model.loss_db(10.0) - model.loss_db(1.0) == pytest.approx(30.0)
        assert model.loss_db(100.0) - model.loss_db(10.0) == \
            pytest.approx(30.0)

    def test_monotone_in_distance(self):
        model = LogDistancePathLoss()
        losses = [model.loss_db(d) for d in (1, 2, 5, 10, 20)]
        assert losses == sorted(losses)

    def test_mean_snr(self):
        model = LogDistancePathLoss(exponent=2.0, reference_loss_db=40.0)
        snr = model.mean_snr_db(tx_power_dbm=10.0, noise_floor_dbm=-85.0,
                                distance=10.0)
        assert snr == pytest.approx(10.0 - 60.0 + 85.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss(exponent=0.0)
        with pytest.raises(ValueError):
            LogDistancePathLoss(reference_distance=0.0)
        with pytest.raises(ValueError):
            LogDistancePathLoss(shadowing_sigma_db=-1.0)


class TestShadowing:
    def test_default_off_is_bit_identical(self):
        """sigma=0 (the default) must reproduce the historical model
        exactly — the property the golden fixtures rely on."""
        plain = LogDistancePathLoss()
        explicit = LogDistancePathLoss(shadowing_sigma_db=0.0)
        for d in (0.5, 1.0, 3.7, 10.0, 25.0, 100.0):
            assert plain.loss_db(d) == explicit.loss_db(d)
            assert plain.loss_db(d) == plain.loss_db(d, 0.0)
            assert plain.mean_snr_db(-5.0, -85.0, d) == \
                plain.mean_snr_db(-5.0, -85.0, d, 0.0)

    def test_sigma_zero_consumes_no_randomness(self):
        model = LogDistancePathLoss(shadowing_sigma_db=0.0)
        rng = np.random.default_rng(7)
        assert model.sample_shadowing_db(rng) == 0.0
        # The generator state is untouched: the next draw matches a
        # fresh generator with the same seed.
        assert rng.normal() == np.random.default_rng(7).normal()

    def test_offset_shifts_loss_and_snr(self):
        model = LogDistancePathLoss(shadowing_sigma_db=6.0)
        base = model.loss_db(10.0)
        assert model.loss_db(10.0, 4.5) == pytest.approx(base + 4.5)
        assert model.mean_snr_db(-5.0, -85.0, 10.0, 4.5) == \
            pytest.approx(model.mean_snr_db(-5.0, -85.0, 10.0) - 4.5)

    def test_draws_match_sigma(self):
        sigma = 8.0
        model = LogDistancePathLoss(shadowing_sigma_db=sigma)
        rng = np.random.default_rng(2009)
        draws = np.array([model.sample_shadowing_db(rng)
                          for _ in range(4000)])
        assert abs(draws.mean()) < 0.5
        assert draws.std() == pytest.approx(sigma, rel=0.1)

    def test_draws_deterministic_per_seed(self):
        model = LogDistancePathLoss(shadowing_sigma_db=4.0)
        a = model.sample_shadowing_db(np.random.default_rng(11))
        b = model.sample_shadowing_db(np.random.default_rng(11))
        assert a == b and a != 0.0
