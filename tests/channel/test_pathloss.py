"""Tests for the log-distance path loss model."""

import pytest

from repro.channel.pathloss import LogDistancePathLoss


class TestLogDistance:
    def test_reference_point(self):
        model = LogDistancePathLoss(exponent=3.0, reference_loss_db=40.0)
        assert model.loss_db(1.0) == pytest.approx(40.0)

    def test_slope(self):
        model = LogDistancePathLoss(exponent=3.0, reference_loss_db=40.0)
        assert model.loss_db(10.0) - model.loss_db(1.0) == pytest.approx(30.0)
        assert model.loss_db(100.0) - model.loss_db(10.0) == \
            pytest.approx(30.0)

    def test_monotone_in_distance(self):
        model = LogDistancePathLoss()
        losses = [model.loss_db(d) for d in (1, 2, 5, 10, 20)]
        assert losses == sorted(losses)

    def test_mean_snr(self):
        model = LogDistancePathLoss(exponent=2.0, reference_loss_db=40.0)
        snr = model.mean_snr_db(tx_power_dbm=10.0, noise_floor_dbm=-85.0,
                                distance=10.0)
        assert snr == pytest.approx(10.0 - 60.0 + 85.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss(exponent=0.0)
        with pytest.raises(ValueError):
            LogDistancePathLoss(reference_distance=0.0)
