"""Docstring-coverage gate over ``src/repro`` (CI also runs
``interrogate`` with the same floor; this AST-based twin keeps the
gate enforceable with zero extra dependencies).

Counts modules, public classes, and public functions/methods —
anything a reader can import without a leading underscore — and fails
if fewer than :data:`FLOOR` percent carry a docstring.
"""

from __future__ import annotations

import ast
import os

FLOOR = 80.0

_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src", "repro")


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _documentable_nodes(tree: ast.Module):
    """Yield the module plus every public class and public
    module-level function / method (nested closures are helpers, not
    API — mirroring interrogate's ``--ignore-nested-functions``)."""
    yield tree
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and _is_public(node.name):
            yield node
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            yield node
            for member in node.body:
                if isinstance(member, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)) \
                        and _is_public(member.name):
                    yield member


def _scan():
    missing, total, documented = [], 0, 0
    for dirpath, _dirs, files in os.walk(_SRC):
        if "__pycache__" in dirpath:
            continue
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            with open(path) as fh:
                tree = ast.parse(fh.read(), filename=path)
            for node in _documentable_nodes(tree):
                total += 1
                if ast.get_docstring(node):
                    documented += 1
                else:
                    label = getattr(node, "name", "<module>")
                    line = getattr(node, "lineno", 1)
                    missing.append(
                        f"{os.path.relpath(path, _SRC)}:{line} "
                        f"{label}")
    return missing, total, documented


def test_docstring_coverage_floor():
    missing, total, documented = _scan()
    coverage = 100.0 * documented / max(total, 1)
    assert coverage >= FLOOR, (
        f"docstring coverage {coverage:.1f}% < {FLOOR}% "
        f"({documented}/{total}); undocumented:\n  "
        + "\n  ".join(missing[:40]))


def test_key_public_api_fully_documented():
    """The modules the docs point at must be at 100%, not just 80%."""
    key_modules = [
        os.path.join("experiments", "api.py"),
        os.path.join("phy", "batch.py"),
        os.path.join("phy", "backend.py"),
        os.path.join("phy", "calibrate.py"),
        os.path.join("rateadapt", "base.py"),
    ]
    for rel in key_modules:
        path = os.path.join(_SRC, rel)
        with open(path) as fh:
            tree = ast.parse(fh.read(), filename=path)
        missing = [getattr(node, "name", "<module>")
                   for node in _documentable_nodes(tree)
                   if not ast.get_docstring(node)]
        assert not missing, f"{rel} undocumented: {missing}"
