"""Cross-layer integration tests: PHY + core + channel together.

These verify the end-to-end properties the SoftRate design rests on,
each through the bit-exact pipeline rather than unit mocks.
"""

import numpy as np
import pytest

from repro.channel.awgn import apply_channel
from repro.channel.interference import overlay_interference
from repro.channel.rayleigh import RayleighFadingProcess
from repro.core.hints import frame_ber_estimate
from repro.core.interference import InterferenceDetector
from repro.phy.bits import random_bits
from repro.phy.snr import db_to_linear
from repro.phy.transceiver import Transceiver


@pytest.fixture(scope="module")
def phy():
    return Transceiver()


class TestBerEstimationProperty:
    def test_estimate_orders_channels_correctly(self, phy):
        """Better channels must yield lower BER estimates, even when
        every frame is error-free — the property that lets SoftRate
        pick rates without probing (section 3.1)."""
        rng = np.random.default_rng(0)
        payload = random_bits(800, rng)
        tx = phy.transmit(payload, rate_index=2)
        estimates = []
        for snr_db in (8.0, 11.0, 14.0):
            per_frame = []
            for _ in range(5):
                gains = np.ones(tx.layout.n_symbols, dtype=complex)
                rx_sym, g = apply_channel(tx.symbols, gains,
                                          db_to_linear(-snr_db), rng)
                rx = phy.receive(rx_sym, g, tx.layout, tx_frame=tx)
                assert rx.crc_ok
                per_frame.append(frame_ber_estimate(rx.hints))
            estimates.append(np.mean(per_frame))
        assert estimates[0] > estimates[1] > estimates[2]

    def test_estimate_monotone_in_rate(self, phy):
        """At one SNR, higher rates must show higher estimated BER."""
        rng = np.random.default_rng(1)
        payload = random_bits(800, rng)
        means = []
        for rate_index in (1, 3, 5):
            tx = phy.transmit(payload, rate_index=rate_index)
            per_frame = []
            for _ in range(5):
                gains = np.ones(tx.layout.n_symbols, dtype=complex)
                rx_sym, g = apply_channel(tx.symbols, gains,
                                          db_to_linear(-9.0), rng)
                rx = phy.receive(rx_sym, g, tx.layout, tx_frame=tx)
                per_frame.append(frame_ber_estimate(rx.hints))
            means.append(np.mean(per_frame))
        assert means[0] < means[1] < means[2]


class TestInterferenceExcision:
    def test_clean_ber_reflects_channel_not_collision(self, phy):
        """After excision, the fed-back BER must match the channel's
        own quality, not the collision's damage (section 3.2)."""
        rng = np.random.default_rng(2)
        payload = random_bits(1600, rng)
        tx = phy.transmit(payload, rate_index=3)
        layout = tx.layout
        detector = InterferenceDetector()
        clean_est, excised_est = [], []
        for _ in range(8):
            # Reference: the same channel without interference.
            gains = np.ones(layout.n_symbols, dtype=complex)
            rx_sym, g = apply_channel(tx.symbols, gains,
                                      db_to_linear(-9.0), rng)
            rx = phy.receive(rx_sym, g, layout, tx_frame=tx)
            clean_est.append(frame_ber_estimate(rx.hints))
            # Collided: strong interferer over the tail.
            interference, _span = overlay_interference(
                layout.n_symbols, layout.n_subcarriers, 0.0, rng,
                overlap_fraction=0.4, align="tail")
            rx_sym, g = apply_channel(tx.symbols, gains,
                                      db_to_linear(-9.0), rng,
                                      interference=interference)
            rx = phy.receive(rx_sym, g, layout, tx_frame=tx)
            report = detector.analyze(rx.hints, rx.info_symbol,
                                      rx.n_body_symbols)
            if report.detected:
                excised_est.append(report.ber_clean)
        assert len(excised_est) >= 5
        # Excised BER must land orders of magnitude below the raw
        # collided BER (~4e-2) and below the rate-decision thresholds,
        # so SoftRate holds its rate.  Residual boundary contamination
        # keeps it above the pristine-channel estimate, which sits at
        # the numerical floor here.
        assert np.mean(excised_est) < 1e-4
        assert np.median(excised_est) < 1e-5


class TestFadingVisibility:
    def test_fast_fade_raises_estimate_without_touching_preamble_snr(
            self, phy):
        """A mid-frame fade must show up in the BER estimate while the
        preamble SNR stays blind to it (sections 3.4, 5.2)."""
        rng = np.random.default_rng(3)
        payload = random_bits(1600, rng)
        tx = phy.transmit(payload, rate_index=3)
        n = tx.layout.n_symbols
        flat = np.ones(n, dtype=complex)
        faded = flat.copy()
        body = tx.layout.body
        mid = (body.start + body.stop) // 2
        faded[mid:mid + 3] = 0.18
        noise = db_to_linear(-12.0)
        rx_flat_sym, g1 = apply_channel(tx.symbols, flat, noise, rng)
        rx_flat = phy.receive(rx_flat_sym, g1, tx.layout, tx_frame=tx)
        rx_fade_sym, g2 = apply_channel(tx.symbols, faded, noise, rng)
        rx_fade = phy.receive(rx_fade_sym, g2, tx.layout, tx_frame=tx)
        assert frame_ber_estimate(rx_fade.hints) > \
            100 * frame_ber_estimate(rx_flat.hints)
        assert abs(rx_fade.snr_db - rx_flat.snr_db) < 2.0


class TestRayleighEndToEnd:
    def test_estimates_calibrated_over_fading(self, phy):
        """Pooled over fading frames, the estimate must match the
        pooled true BER within a small factor (Fig. 8)."""
        rng = np.random.default_rng(4)
        payload = random_bits(1600, rng)
        tx = phy.transmit(payload, rate_index=2)
        est, true = [], []
        for _ in range(25):
            fading = RayleighFadingProcess(400.0, rng)
            amplitude = np.sqrt(db_to_linear(rng.uniform(4.0, 12.0)))
            gains = amplitude * fading.symbol_gains(
                0.0, tx.layout.n_symbols, phy.mode.symbol_time)
            rx_sym, g = apply_channel(tx.symbols, gains, 1.0, rng)
            rx = phy.receive(rx_sym, g, tx.layout, tx_frame=tx)
            est.append(frame_ber_estimate(rx.hints))
            true.append(rx.true_ber)
        assert np.mean(true) > 1e-3
        assert 0.3 < np.mean(est) / np.mean(true) < 3.0
