"""Property wall for the rateless (fountain) codec.

Three guarantees the video pipeline leans on, each held under
Hypothesis-driven randomization:

* ``decode()`` returns a block *iff* :attr:`RatelessDecoder.decodable`
  — the weight threshold and the GF(2) rank condition are exactly the
  decode gate, at every point of the symbol stream;
* decoding is bit-exact: whatever sufficient symbol subset arrives
  (systematic, repair, shuffled, duplicated), the decoded block equals
  the encoded data;
* the symbol stream is a pure function of ``(seed, index)`` — the
  determinism the campaign resume wall rides on.

Plus the salvage rule: chunk gating on mean error probability, the
``prod(1 - p)`` weight, and partial-tail exclusion.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.recovery.rateless import (RatelessDecoder, RatelessEncoder,
                                     salvage_symbols)


def _data(seed: int, n_bits: int) -> np.ndarray:
    rng = np.random.default_rng((seed, 7))
    return rng.integers(0, 2, n_bits).astype(np.uint8)


@st.composite
def _block(draw, max_chunks=24):
    """(n_bits, symbol_bits) with k bounded so GF(2) work stays small
    while still covering 1-bit symbols and ragged tails."""
    symbol_bits = draw(st.integers(1, 96))
    chunks = draw(st.integers(1, max_chunks))
    tail = draw(st.integers(1, symbol_bits))
    n_bits = (chunks - 1) * symbol_bits + tail
    return n_bits, symbol_bits


# --------------------------------------------------------------------
# decode() iff decodable — at every prefix of the stream
# --------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(block=_block(), seed=st.integers(0, 2**16),
       skip=st.integers(0, 3))
def test_decode_iff_decodable_along_stream(block, seed, skip):
    """Walking an arbitrary symbol stream, the decode gate and the
    decode result flip to true at exactly the same step."""
    n_bits, symbol_bits = block
    data = _data(seed, n_bits)
    enc = RatelessEncoder(data, symbol_bits, seed=seed)
    dec = RatelessDecoder(n_bits, symbol_bits, seed=seed,
                          overhead=0.0)
    # Skip a few systematic symbols so repair symbols must carry the
    # block; bound the stream so the test always terminates.
    index = 0
    for _ in range(6 * enc.k + 20):
        if dec.decodable:
            break
        assert dec.decode() is None
        if index < skip:
            index += 1
            continue
        dec.add(index, enc.symbol(index))
        index += 1
    assert dec.decodable, "stream never became decodable"
    decoded = dec.decode()
    assert decoded is not None
    np.testing.assert_array_equal(decoded, data)


@settings(max_examples=25, deadline=None)
@given(block=_block(), seed=st.integers(0, 2**16),
       overhead=st.floats(0.05, 0.8))
def test_weight_threshold_gates_decode(block, seed, overhead):
    """Full rank with insufficient accumulated weight is *not*
    decodable; topping the weight up (better copies or more repair
    symbols) flips the gate."""
    n_bits, symbol_bits = block
    data = _data(seed, n_bits)
    enc = RatelessEncoder(data, symbol_bits, seed=seed)
    dec = RatelessDecoder(n_bits, symbol_bits, seed=seed,
                          overhead=overhead)
    # All k systematic symbols at a weight that keeps the total just
    # under k*(1+overhead): rank is complete, weight is not.
    low = (1.0 + overhead / 2.0) / (1.0 + overhead)
    for i in range(enc.k):
        dec.add(i, enc.symbol(i), weight=low)
    assert dec.rank == dec.k
    assert not dec.decodable
    assert dec.decode() is None
    # Fresh repair symbols add weight without needing new rank.
    index = enc.k
    for _ in range(10 * enc.k + 20):
        if dec.decodable:
            break
        dec.add(index, enc.symbol(index))
        index += 1
    assert dec.decodable
    np.testing.assert_array_equal(dec.decode(), data)


def test_rank_deficiency_blocks_decode():
    """Weight above threshold with a rank hole stays undecodable."""
    data = _data(3, 256)
    enc = RatelessEncoder(data, 32, seed=3)
    dec = RatelessDecoder(256, 32, seed=3, overhead=0.0)
    for i in range(enc.k - 1):          # leave symbol k-1 out
        dec.add(i, enc.symbol(i))
    # Re-adding known indices only bumps weight, never rank.
    for i in range(enc.k - 1):
        dec.add(i, enc.symbol(i))
    assert dec.received_weight >= dec.threshold - 1
    assert dec.rank == dec.k - 1
    assert not dec.decodable
    assert dec.decode() is None
    dec.add(enc.k - 1, enc.symbol(enc.k - 1))
    assert dec.decodable
    np.testing.assert_array_equal(dec.decode(), data)


# --------------------------------------------------------------------
# bit-exactness under arbitrary sufficient subsets
# --------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(block=_block(), seed=st.integers(0, 2**16),
       data_seed=st.integers(0, 2**16),
       order_seed=st.integers(0, 2**16))
def test_decode_is_bit_exact_for_shuffled_repair_streams(
        block, seed, data_seed, order_seed):
    """A shuffled, duplicated, repair-heavy symbol subset decodes to
    exactly the encoded bits."""
    n_bits, symbol_bits = block
    data = _data(data_seed, n_bits)
    enc = RatelessEncoder(data, symbol_bits, seed=seed)
    order = list(range(2 * enc.k + 10))
    np.random.default_rng(order_seed).shuffle(order)
    dec = RatelessDecoder(n_bits, symbol_bits, seed=seed,
                          overhead=0.1)
    for index in order + order[: enc.k // 2]:       # duplicates too
        if dec.decodable:
            break
        dec.add(index, enc.symbol(index))
    assert dec.decodable
    np.testing.assert_array_equal(dec.decode(), data)


# --------------------------------------------------------------------
# determinism per seed
# --------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(block=_block(), seed=st.integers(0, 2**16))
def test_symbol_stream_is_deterministic_per_seed(block, seed):
    n_bits, symbol_bits = block
    data = _data(seed, n_bits)
    a = RatelessEncoder(data, symbol_bits, seed=seed)
    b = RatelessEncoder(data.copy(), symbol_bits, seed=seed)
    for index in range(3 * a.k + 8):
        np.testing.assert_array_equal(a.symbol(index),
                                      b.symbol(index))
        np.testing.assert_array_equal(a.coefficients(index),
                                      b.coefficients(index))


def test_different_seeds_give_different_repair_symbols():
    data = _data(11, 512)
    a = RatelessEncoder(data, 32, seed=1)
    b = RatelessEncoder(data, 32, seed=2)
    repair = range(a.k, a.k + 12)
    assert any(not np.array_equal(a.coefficients(i),
                                  b.coefficients(i)) for i in repair)


def test_duplicate_symbol_keeps_best_weight_only():
    data = _data(5, 128)
    enc = RatelessEncoder(data, 32, seed=5)
    dec = RatelessDecoder(128, 32, seed=5, overhead=0.0)
    dec.add(0, enc.symbol(0), weight=0.4)
    dec.add(0, enc.symbol(0), weight=0.9)
    dec.add(0, enc.symbol(0), weight=0.2)
    assert dec.received_weight == pytest.approx(0.9)
    assert dec.rank == 1


def test_weight_and_size_validation():
    dec = RatelessDecoder(64, 32, seed=0)
    with pytest.raises(ValueError):
        dec.add(0, np.zeros(32, dtype=np.uint8), weight=0.0)
    with pytest.raises(ValueError):
        dec.add(0, np.zeros(32, dtype=np.uint8), weight=1.5)
    with pytest.raises(ValueError):
        dec.add(0, np.zeros(16, dtype=np.uint8))
    with pytest.raises(ValueError):
        RatelessDecoder(0, 32)
    with pytest.raises(ValueError):
        RatelessEncoder(np.zeros(0, dtype=np.uint8), 32)
    with pytest.raises(ValueError):
        RatelessEncoder(np.zeros(8, dtype=np.uint8), 0)


# --------------------------------------------------------------------
# salvage rule
# --------------------------------------------------------------------

def test_salvage_gates_on_mean_error_probability():
    body = np.arange(96) % 2
    p = np.full(96, 1e-5)
    p[32:64] = 0.3                      # hopeless middle chunk
    out = salvage_symbols(body, p, symbol_bits=32,
                          max_error_prob=1e-3)
    assert [s.chunk for s in out] == [0, 2]
    np.testing.assert_array_equal(out[0].bits, body[:32])
    np.testing.assert_array_equal(out[1].bits, body[64:])
    for s in out:
        assert s.weight == pytest.approx(float(np.prod(1 - p[:32])))


def test_salvage_excludes_partial_tail_chunk():
    body = np.zeros(80, dtype=np.uint8)     # 2.5 chunks of 32
    p = np.full(80, 1e-6)
    out = salvage_symbols(body, p, symbol_bits=32)
    assert [s.chunk for s in out] == [0, 1]


def test_salvage_requires_aligned_shapes():
    with pytest.raises(ValueError):
        salvage_symbols(np.zeros(64, dtype=np.uint8),
                        np.zeros(32), symbol_bits=32)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**16), symbol_bits=st.integers(8, 64),
       n_chunks=st.integers(1, 8))
def test_salvaged_chunks_decode_through_the_decoder(seed, symbol_bits,
                                                    n_chunks):
    """End-to-end: clean systematic chunks salvaged from a frame body
    feed the decoder and reproduce the data."""
    n_bits = symbol_bits * n_chunks
    data = _data(seed, n_bits)
    enc = RatelessEncoder(data, symbol_bits, seed=seed)
    p = np.full(n_bits, 1e-6)
    salvaged = salvage_symbols(data, p, symbol_bits,
                               max_error_prob=1e-3)
    assert len(salvaged) == n_chunks
    dec = RatelessDecoder(n_bits, symbol_bits, seed=seed,
                          overhead=0.0)
    for s in salvaged:
        dec.add(s.chunk, s.bits, weight=s.weight)
    extra = enc.k
    while not dec.decodable:
        dec.add(extra, enc.symbol(extra))
        extra += 1
    np.testing.assert_array_equal(dec.decode(), data)
