"""Regression tests for the PPR splice/accounting bugfixes.

Three latent bugs in :meth:`PprProtocol.deliver` are pinned here with
tests that fail on the pre-fix code:

* a dead/short retransmission round used to NaN the confidence
  bookkeeping (empty-slice mean) or crash on a shape-mismatched
  splice;
* the byte-alignment pad bits appended to chunk retransmissions must
  never leak values or confidences into the last spliced chunk;
* feedback accounting used to charge a full chunk bitmap on the
  single-chunk fallback path and an ACK before ``crc_ok`` was known.

All tests drive a scripted fake PHY so each round's received bits and
hint confidences are chosen exactly, independent of channel noise.
"""

import math
import warnings
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.bits import append_crc32, check_crc32, random_bits
from repro.recovery import PprOutcome, PprProtocol


def _hints_for(p):
    """LLR magnitudes whose error probability is exactly ``p``."""
    p = np.asarray(p, dtype=float)
    return np.log((1.0 - p) / p)


class _FakeLayout:
    """Minimal stand-in for a frame layout: airtime ~ payload size."""

    def __init__(self, n_bits):
        self.n_bits = n_bits

    def airtime(self, symbol_time):
        return self.n_bits * symbol_time


class _FakePhy:
    """Scripted transceiver: each ``receive`` pops the next script
    entry, a callable from the transmitted payload bits to a fake
    ``RxResult`` (``SimpleNamespace`` with ``payload_bits``,
    ``body_bits``, ``crc_ok``, ``hints``)."""

    mode = SimpleNamespace(symbol_time=4e-6)

    def __init__(self, script):
        self.script = list(script)
        self.sent = []

    def transmit(self, payload_bits, rate_index):
        payload_bits = np.asarray(payload_bits, dtype=np.uint8)
        self.sent.append(payload_bits.copy())
        return SimpleNamespace(symbols=payload_bits,
                               layout=_FakeLayout(payload_bits.size))

    def receive(self, rx_symbols, gains, layout):
        return self.script.pop(0)(rx_symbols)


def _passthrough(tx_symbols, round_index):
    return tx_symbols, None


def _rx_body(body, p):
    """First-round result: a body estimate with per-bit error
    probability ``p`` (scalar or array)."""
    body = np.asarray(body, dtype=np.uint8)
    p = np.broadcast_to(np.asarray(p, dtype=float), body.shape)
    return SimpleNamespace(payload_bits=body[:-32], body_bits=body.copy(),
                           crc_ok=bool(check_crc32(body)),
                           hints=_hints_for(p))


def _rx_retx(bits, p):
    """Retransmission-round result carrying ``bits`` at confidence
    ``p`` (the chunk frame's own CRC never verifies here)."""
    bits = np.asarray(bits, dtype=np.uint8)
    p = np.broadcast_to(np.asarray(p, dtype=float), bits.shape)
    return SimpleNamespace(payload_bits=bits.copy(), body_bits=bits.copy(),
                           crc_ok=False, hints=_hints_for(p))


def _corrupt(body, sl):
    bad = body.copy()
    bad[sl] ^= 1
    return bad


class TestDeadRetransmissionRound:
    """Bug 1: short/undetected retransmissions must be skipped, not
    spliced."""

    def test_empty_retransmission_no_warning_estimate_unchanged(self):
        rng = np.random.default_rng(0)
        payload = random_bits(64, rng)
        body = append_crc32(payload)
        p = np.full(body.size, 1e-6)
        p[32:64] = 0.5                          # chunk 1 looks bad
        first = _corrupt(body, slice(32, 64))
        script = [
            lambda tx, r=_rx_body(first, p): r,
            # The retransmission is never detected: zero bits arrive.
            lambda tx: _rx_retx(np.zeros(0, dtype=np.uint8),
                                np.zeros(0)),
        ]
        phy = _FakePhy(script)
        proto = PprProtocol(phy, _passthrough, chunk_bits=32,
                            max_rounds=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")      # NaN mean would raise
            outcome = proto.deliver(payload, rate_index=0)
        assert not outcome.delivered
        assert np.array_equal(outcome.estimate, first)

    def test_partial_retransmission_splices_only_arrived_chunks(self):
        rng = np.random.default_rng(1)
        payload = random_bits(64, rng)
        body = append_crc32(payload)
        p = np.full(body.size, 1e-6)
        p[0:32] = 0.45                          # chunk 0 bad
        p[32:64] = 0.5                          # chunk 1 worse
        first = _corrupt(body, slice(0, 64))
        # Suspects are ordered worst-first, so the retransmission is
        # chunk 1 then chunk 0; only the first 40 of its 64 bits
        # arrive.  The pre-fix splice assigned an 8-bit slice into
        # chunk 0's 32-bit destination.
        script = [
            lambda tx, r=_rx_body(first, p): r,
            lambda tx: _rx_retx(tx[:40], 1e-6),
        ]
        phy = _FakePhy(script)
        proto = PprProtocol(phy, _passthrough, chunk_bits=32,
                            max_rounds=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            outcome = proto.deliver(payload, rate_index=0)
        # The fully-arrived chunk was spliced, the truncated one kept.
        assert np.array_equal(outcome.estimate[32:64], body[32:64])
        assert np.array_equal(outcome.estimate[0:32], first[0:32])


class _OddChunkPpr(PprProtocol):
    """PPR with a forced odd chunk width.

    Under the shipped invariants (byte-aligned payloads, chunk sizes a
    multiple of 8) every chunk width is a multiple of 8 and the pad
    path never triggers; this subclass simulates a relaxed frame
    layout so the pad/cursor arithmetic is actually exercised."""

    def __init__(self, *args, odd_width, **kwargs):
        super().__init__(*args, **kwargs)
        self._odd_width = odd_width

    def _chunk_slices(self, n_body_bits):
        out = []
        for start in range(0, n_body_bits, self._odd_width):
            out.append(slice(start,
                             min(start + self._odd_width, n_body_bits)))
        return out


class TestPadBitIsolation:
    """Bug 2: byte-alignment pad bits must never bleed into the last
    spliced chunk, even at odd (non-byte-multiple) chunk widths."""

    @settings(max_examples=40, deadline=None)
    @given(payload_bytes=st.integers(5, 25),
           odd_width=st.integers(9, 45).filter(lambda w: w % 8 != 0),
           seed=st.integers(0, 2**16))
    def test_pad_bits_never_splice(self, payload_bytes, odd_width,
                                   seed):
        rng = np.random.default_rng(seed)
        payload = random_bits(8 * payload_bytes, rng)
        body = append_crc32(payload)
        slices = _OddChunkPpr(
            _FakePhy([]), _passthrough,
            odd_width=odd_width)._chunk_slices(body.size)
        last = slices[-1]
        width = last.stop - last.start
        p = np.full(body.size, 1e-6)
        p[last] = 0.5                           # only the last chunk bad
        first = _corrupt(body, last)
        script = [
            lambda tx, r=_rx_body(first, p): r,
            # Perfect copy of the chunk bits, but every pad bit is
            # received flipped at full confidence: any leak corrupts
            # the estimate and the CRC below catches it.
            lambda tx: _rx_retx(
                np.concatenate([tx[:width], 1 - tx[width:]]), 1e-9),
        ]
        phy = _FakePhy(script)
        proto = _OddChunkPpr(phy, _passthrough, odd_width=odd_width,
                             max_rounds=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            outcome = proto.deliver(payload, rate_index=0)
        # The retransmitted frame really carried pad bits...
        assert phy.sent[1].size == width + (-width) % 8
        # ...and none of them leaked into the spliced estimate.
        assert outcome.delivered
        assert outcome.estimate.size == body.size
        assert np.array_equal(outcome.estimate, body)
        assert outcome.confidences.size == body.size


class TestFeedbackAccounting:
    """Bug 3: feedback must match the RecoveryOutcome contract —
    request bits at their real size, ACK only on verified splice."""

    def _true_body(self, n_payload, seed):
        rng = np.random.default_rng(seed)
        payload = random_bits(n_payload, rng)
        return payload, append_crc32(payload)

    def test_success_first_try_charges_single_ack(self):
        payload, body = self._true_body(64, 2)
        phy = _FakePhy([lambda tx, r=_rx_body(body, 1e-6): r])
        proto = PprProtocol(phy, _passthrough, chunk_bits=32)
        outcome = proto.deliver(payload, rate_index=0)
        assert outcome.delivered and outcome.rounds == 1
        assert outcome.feedback_bits == 1

    def test_fallback_charges_log2_index_not_bitmap(self):
        payload, body = self._true_body(64, 3)  # body 96 b, 3 chunks
        p = np.full(body.size, 1e-4)
        p[64:96] = 5e-4             # worst chunk, still sub-threshold
        first = _corrupt(body, slice(64, 96))
        script = [
            lambda tx, r=_rx_body(first, p): r,
            lambda tx: _rx_retx(tx, 1e-6),      # clean chunk copy
        ]
        phy = _FakePhy(script)
        proto = PprProtocol(phy, _passthrough, chunk_bits=32)
        outcome = proto.deliver(payload, rate_index=0)
        assert outcome.delivered and outcome.rounds == 2
        # ceil(log2(3)) = 2 bits of chunk index + the terminal ACK.
        assert outcome.feedback_bits == math.ceil(math.log2(3)) + 1

    def test_multi_round_charges_bitmap_per_request_plus_ack(self):
        payload, body = self._true_body(64, 4)  # 3 chunks
        p = np.full(body.size, 1e-6)
        p[32:64] = 0.5
        first = _corrupt(body, slice(32, 64))
        script = [
            lambda tx, r=_rx_body(first, p): r,
            # Round 1 retransmission: still the wrong bits, slightly
            # more confident so they are spliced but the CRC fails.
            lambda tx: _rx_retx(first[32:64], 0.4),
            # Round 2: the true chunk at high confidence.
            lambda tx: _rx_retx(tx, 1e-6),
        ]
        phy = _FakePhy(script)
        proto = PprProtocol(phy, _passthrough, chunk_bits=32)
        outcome = proto.deliver(payload, rate_index=0)
        assert outcome.delivered and outcome.rounds == 3
        assert outcome.feedback_bits == 3 + 3 + 1   # two bitmaps + ACK

    def test_give_up_charges_no_terminal_ack(self):
        payload, body = self._true_body(64, 5)  # 3 chunks
        p = np.full(body.size, 1e-6)
        p[32:64] = 0.5
        first = _corrupt(body, slice(32, 64))
        script = [
            lambda tx, r=_rx_body(first, p): r,
            lambda tx: _rx_retx(first[32:64], 0.4),
        ]
        phy = _FakePhy(script)
        proto = PprProtocol(phy, _passthrough, chunk_bits=32,
                            max_rounds=2)
        outcome = proto.deliver(payload, rate_index=0)
        assert not outcome.delivered
        assert outcome.feedback_bits == 3           # one bitmap, no ACK

    def test_outcome_carries_salvage_state(self):
        payload, body = self._true_body(64, 6)
        phy = _FakePhy([lambda tx, r=_rx_body(body, 1e-6): r])
        proto = PprProtocol(phy, _passthrough, chunk_bits=32)
        outcome = proto.deliver(payload, rate_index=0)
        assert isinstance(outcome, PprOutcome)
        assert outcome.estimate.size == body.size
        assert np.all(outcome.confidences < 1e-3)
