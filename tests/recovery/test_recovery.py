"""Tests for the error-recovery protocols (ARQ, PPR, IR)."""

import numpy as np
import pytest

from repro.channel.awgn import apply_channel, noise_var_for_snr_db
from repro.phy.bits import random_bits
from repro.phy.transceiver import Transceiver
from repro.recovery import (FrameArqProtocol,
                            IncrementalRedundancyProtocol, PprProtocol)


@pytest.fixture(scope="module")
def phy():
    return Transceiver()


def _awgn_channel(snr_db, seed):
    rng = np.random.default_rng(seed)

    def channel(tx_symbols, round_index):
        gains = np.ones(tx_symbols.shape[0], dtype=complex)
        return apply_channel(tx_symbols, gains,
                             noise_var_for_snr_db(snr_db), rng)

    return channel


def _burst_channel(snr_db, seed, bad_symbols=3):
    """Clean channel with a small faded region in round 0 only —
    PPR's sweet spot: a mostly-correct first frame."""
    rng = np.random.default_rng(seed)

    def channel(tx_symbols, round_index):
        n = tx_symbols.shape[0]
        gains = np.ones(n, dtype=complex)
        if round_index == 0:
            mid = n // 2
            gains[mid:mid + bad_symbols] = 0.15
        return apply_channel(tx_symbols, gains,
                             noise_var_for_snr_db(snr_db), rng)

    return channel


class TestFrameArq:
    def test_clean_channel_one_round(self, phy):
        rng = np.random.default_rng(0)
        payload = random_bits(512, rng)
        proto = FrameArqProtocol(phy, _awgn_channel(15.0, 1))
        outcome = proto.deliver(payload, rate_index=3)
        assert outcome.delivered
        assert outcome.rounds == 1
        assert outcome.goodput_bps > 0

    def test_burst_recovered_by_retry(self, phy):
        rng = np.random.default_rng(1)
        payload = random_bits(512, rng)
        proto = FrameArqProtocol(phy, _burst_channel(14.0, 2))
        outcome = proto.deliver(payload, rate_index=3)
        assert outcome.delivered
        assert outcome.rounds == 2          # round 0 hits the burst

    def test_hopeless_channel_gives_up(self, phy):
        rng = np.random.default_rng(2)
        payload = random_bits(512, rng)
        proto = FrameArqProtocol(phy, _awgn_channel(-5.0, 3),
                                 max_rounds=3)
        outcome = proto.deliver(payload, rate_index=5)
        assert not outcome.delivered
        assert outcome.rounds == 3
        assert outcome.goodput_bps == 0.0

    def test_airtime_grows_with_rounds(self, phy):
        rng = np.random.default_rng(3)
        payload = random_bits(512, rng)
        one = FrameArqProtocol(phy, _awgn_channel(15.0, 4)).deliver(
            payload, rate_index=3)
        many = FrameArqProtocol(phy, _burst_channel(14.0, 5)).deliver(
            payload, rate_index=3)
        assert many.airtime > one.airtime

    def test_validation(self, phy):
        with pytest.raises(ValueError):
            FrameArqProtocol(phy, _awgn_channel(10.0, 6), max_rounds=0)


class TestPpr:
    def test_clean_channel_one_round(self, phy):
        rng = np.random.default_rng(4)
        payload = random_bits(512, rng)
        proto = PprProtocol(phy, _awgn_channel(15.0, 7))
        outcome = proto.deliver(payload, rate_index=3)
        assert outcome.delivered and outcome.rounds == 1

    def test_burst_repaired_with_partial_retransmission(self, phy):
        rng = np.random.default_rng(5)
        payload = random_bits(1024, rng)
        ppr = PprProtocol(phy, _burst_channel(14.0, 8))
        arq = FrameArqProtocol(phy, _burst_channel(14.0, 8))
        out_ppr = ppr.deliver(payload, rate_index=3)
        out_arq = arq.deliver(payload, rate_index=3)
        assert out_ppr.delivered and out_arq.delivered
        # PPR resends a few chunks, not the whole frame.
        assert out_ppr.airtime < out_arq.airtime

    def test_feedback_accounts_bitmap(self, phy):
        rng = np.random.default_rng(6)
        payload = random_bits(512, rng)
        proto = PprProtocol(phy, _burst_channel(14.0, 9))
        outcome = proto.deliver(payload, rate_index=3)
        if outcome.rounds > 1:
            n_chunks = -(-(payload.size + 32) // proto.chunk_bits)
            assert outcome.feedback_bits >= n_chunks

    def test_validation(self, phy):
        with pytest.raises(ValueError):
            PprProtocol(phy, _awgn_channel(10.0, 0), chunk_bits=12)
        with pytest.raises(ValueError):
            PprProtocol(phy, _awgn_channel(10.0, 0), max_rounds=0)


class TestIncrementalRedundancy:
    def test_good_channel_single_minimal_round(self, phy):
        rng = np.random.default_rng(7)
        payload = random_bits(512, rng)
        proto = IncrementalRedundancyProtocol(phy,
                                              _awgn_channel(12.0, 10))
        outcome = proto.deliver(payload, rate_index=3)
        assert outcome.delivered and outcome.rounds == 1

    def test_marginal_channel_adds_parity(self, phy):
        # At an SNR where rate 3/4 fails but rate 1/2 works, IR must
        # succeed in exactly two rounds.
        rng = np.random.default_rng(8)
        payload = random_bits(1024, rng)
        two_round = 0
        for seed in range(6):
            proto = IncrementalRedundancyProtocol(
                phy, _awgn_channel(2.0, 20 + seed))
            outcome = proto.deliver(payload, rate_index=3)
            assert outcome.delivered
            two_round += outcome.rounds == 2
        assert two_round >= 4

    def test_chase_combining_eventually_wins(self, phy):
        # Even below rate-1/2's threshold, repeated full rounds add
        # LLR energy and get the frame through.
        rng = np.random.default_rng(9)
        payload = random_bits(512, rng)
        proto = IncrementalRedundancyProtocol(
            phy, _awgn_channel(-1.5, 30), max_rounds=6)
        outcome = proto.deliver(payload, rate_index=2)
        assert outcome.delivered
        assert outcome.rounds >= 3

    def test_round1_cheaper_than_full_frame(self, phy):
        # IR's first round sends 3/4-punctured parity only: less
        # airtime than ARQ's full rate-1/2 frame at the same
        # modulation.
        rng = np.random.default_rng(10)
        payload = random_bits(1024, rng)
        ir = IncrementalRedundancyProtocol(phy, _awgn_channel(15.0, 40))
        arq = FrameArqProtocol(phy, _awgn_channel(15.0, 40))
        out_ir = ir.deliver(payload, rate_index=2)   # QPSK 1/2
        out_arq = arq.deliver(payload, rate_index=2)
        assert out_ir.delivered and out_arq.delivered
        assert out_ir.airtime < out_arq.airtime

    def test_validation(self, phy):
        with pytest.raises(ValueError):
            IncrementalRedundancyProtocol(phy, _awgn_channel(10.0, 0),
                                          max_rounds=0)
