"""Markdown link check over ``docs/`` and the README.

Every relative link must resolve to a file in the repository, and
every file/directory path mentioned in backticks in the docs tree
must exist — so the documentation cannot silently rot as the code
moves.  CI runs this as its docs-lint step.
"""

from __future__ import annotations

import os
import re

import pytest

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_MD_FILES = ["README.md", "docs/architecture.md",
             "docs/reproducing.md", "docs/extending.md",
             "docs/campaigns.md", "docs/mesh.md", "docs/slotmac.md",
             "docs/resilience.md", "docs/service.md",
             "docs/video.md"]

_LINK = re.compile(r"\[[^\]]*\]\(([^)#]+)(#[^)]*)?\)")
#: Backticked tokens that look like repo paths (contain a slash and
#: an extension or trailing slash).
_PATHISH = re.compile(r"`([A-Za-z0-9_./-]+/[A-Za-z0-9_.-]+\.[a-z]+)`")


def _md_paths():
    return [path for path in _MD_FILES
            if os.path.exists(os.path.join(_ROOT, path))]


def test_docs_tree_exists():
    for path in _MD_FILES:
        assert os.path.exists(os.path.join(_ROOT, path)), \
            f"missing {path}"


@pytest.mark.parametrize("md", _md_paths())
def test_relative_links_resolve(md):
    base = os.path.dirname(os.path.join(_ROOT, md))
    with open(os.path.join(_ROOT, md)) as fh:
        text = fh.read()
    broken = []
    for match in _LINK.finditer(text):
        target = match.group(1).strip()
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        resolved = os.path.normpath(os.path.join(base, target))
        if not os.path.exists(resolved):
            broken.append(target)
    assert not broken, f"{md}: broken links {broken}"


@pytest.mark.parametrize("md", _md_paths())
def test_backticked_repo_paths_exist(md):
    with open(os.path.join(_ROOT, md)) as fh:
        text = fh.read()
    broken = []
    for match in _PATHISH.finditer(text):
        target = match.group(1)
        if target.startswith(("http", "repro/")) or "*" in target:
            continue
        # Paths are written repo-relative in the docs.
        if not os.path.exists(os.path.join(_ROOT, target)):
            broken.append(target)
    assert not broken, f"{md}: paths that do not exist {broken}"
