"""Tests for the campaign matrix cell experiment."""

import math

import pytest

from repro.experiments.api import get_experiment, run
from repro.experiments.cell import CHANNEL_MODELS, run_cell

_FAST = dict(duration=0.05, n_clients=1, trace_pool=1)


def _norm(metrics):
    """NaN-tolerant comparison form (NaN == NaN when comparing)."""
    return {k: None if isinstance(v, float) and math.isnan(v) else v
            for k, v in metrics.items()}


class TestCellMetrics:
    def test_returns_complete_metric_dict(self):
        metrics = run_cell(**_FAST)
        for key in ("mbps", "fairness", "loss_rate", "retry_rate",
                    "convergence_s", "accuracy", "overselect",
                    "underselect", "n_frames", "frame_log_digest"):
            assert key in metrics
        assert metrics["mbps"] >= 0.0
        assert 0.0 <= metrics["fairness"] <= 1.0
        assert metrics["n_frames"] > 0
        # The digest must survive a float round-trip exactly (48-bit).
        digest = metrics["frame_log_digest"]
        assert float(int(digest)) == digest

    def test_deterministic(self):
        assert _norm(run_cell(**_FAST)) == _norm(run_cell(**_FAST))

    def test_seed_changes_frame_logs(self):
        a = run_cell(seed=1, **_FAST)
        b = run_cell(seed=2, **_FAST)
        assert a["frame_log_digest"] != b["frame_log_digest"]

    def test_replicate_alone_changes_nothing(self):
        """``replicate`` only diversifies campaign-derived seeds; at a
        pinned seed it must be a no-op."""
        assert _norm(run_cell(replicate=0, **_FAST)) == \
            _norm(run_cell(replicate=9, **_FAST))

    @pytest.mark.parametrize("channel", CHANNEL_MODELS)
    def test_all_channel_models_run(self, channel):
        metrics = run_cell(channel=channel, **_FAST)
        assert metrics["n_frames"] > 0

    def test_unknown_channel_rejected(self):
        with pytest.raises(ValueError, match="unknown channel"):
            run_cell(channel="tropospheric", **_FAST)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            run_cell(protocol="alamouti", **_FAST)

    def test_bad_client_count_rejected(self):
        with pytest.raises(ValueError, match="n_clients"):
            run_cell(n_clients=0)

    def test_trained_protocol_runs(self):
        metrics = run_cell(protocol="snr", **_FAST)
        assert metrics["n_frames"] > 0

    def test_trace_pool_smaller_than_clients(self):
        metrics = run_cell(duration=0.05, n_clients=4, trace_pool=2)
        assert metrics["n_frames"] > 0
        assert metrics["fairness"] > 0.0

    def test_hidden_terminals_hurt(self):
        kwargs = dict(duration=0.2, n_clients=3, trace_pool=3,
                      mean_snr_db=22.0)
        sensing = run_cell(carrier_sense_prob=1.0, **kwargs)
        hidden = run_cell(carrier_sense_prob=0.0, **kwargs)
        assert hidden["loss_rate"] > sensing["loss_rate"]


class TestMacWorkload:
    _MAC = dict(duration=0.05, n_clients=3, trace_pool=2,
                workload="mac")

    def test_mac_workload_returns_same_metric_keys(self):
        tcp = run_cell(**_FAST)
        mac = run_cell(**self._MAC)
        assert set(mac) == set(tcp)
        assert mac["n_frames"] > 0

    def test_engines_agree_through_the_cell(self):
        event = run_cell(mac_engine="event", **self._MAC)
        slot = run_cell(mac_engine="slot", **self._MAC)
        assert _norm(event) == _norm(slot)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="workload"):
            run_cell(workload="bogus", **_FAST)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="mac_engine"):
            run_cell(mac_engine="bogus", **_FAST)

    def test_slot_engine_requires_mac_workload(self):
        with pytest.raises(ValueError, match="slot"):
            run_cell(mac_engine="slot", **_FAST)

    def test_slot_engine_rejects_partial_sensing(self):
        with pytest.raises(ValueError, match="carrier sense"):
            run_cell(mac_engine="slot", carrier_sense_prob=0.5,
                     **self._MAC)

    def test_payload_bits_reaches_the_mac(self):
        small = run_cell(**self._MAC)
        large = run_cell(payload_bits=4 * 368, **self._MAC)
        assert large["mbps"] > small["mbps"]


class TestCellRegistration:
    def test_registered_with_seed_param(self):
        spec = get_experiment("cell")
        assert spec.seed_param == "seed"
        assert "replicate" in spec.params
        assert spec.params["phy_backend"] == "surrogate"

    def test_runs_through_registry(self):
        result = run("cell", **_FAST)
        assert result.experiment == "cell"
        assert "mbps" in result.aggregates

    def test_nan_metrics_survive_serialization(self):
        """A zero-frame cell reports NaN rates; the result record must
        round-trip them (strict JSON uses null)."""
        from repro.experiments.api import ExperimentResult
        result = run("cell", duration=0.05, n_clients=1,
                     trace_pool=1, mean_snr_db=-40.0)
        back = ExperimentResult.from_json(result.to_json())
        for key, value in result.aggregates.items():
            if math.isnan(value):
                assert math.isnan(back.aggregates[key])
            else:
                assert back.aggregates[key] == value
