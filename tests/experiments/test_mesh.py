"""Tests for the mesh campaign cell experiment."""

import math

import pytest

from repro.experiments.api import get_experiment, run
from repro.experiments.mesh import MESH_PROTOCOLS, run_mesh

_FAST = dict(duration=0.03)


def _norm(metrics):
    """NaN-tolerant comparison form (NaN == NaN when comparing)."""
    return {k: None if isinstance(v, float) and math.isnan(v) else v
            for k, v in metrics.items()}


class TestMeshMetrics:
    def test_returns_complete_metric_dict(self):
        metrics = run_mesh(**_FAST)
        for key in ("mbps", "delivery_rate", "mean_hops", "loss_rate",
                    "retry_rate", "access_delivery",
                    "mean_hop_delivery", "min_hop_delivery",
                    "handoff_count", "handoff_disruption_s",
                    "ttl_drops", "duplicate_drops", "n_frames",
                    "frame_log_digest"):
            assert key in metrics
        assert metrics["mbps"] > 0.0
        assert 0.0 < metrics["delivery_rate"] <= 1.0
        assert metrics["n_frames"] > 0
        # The digest must survive a float round-trip exactly (48-bit).
        digest = metrics["frame_log_digest"]
        assert float(int(digest)) == digest

    def test_deterministic(self):
        assert _norm(run_mesh(**_FAST)) == _norm(run_mesh(**_FAST))

    def test_seed_changes_frame_logs(self):
        a = run_mesh(seed=1, **_FAST)
        b = run_mesh(seed=2, **_FAST)
        assert a["frame_log_digest"] != b["frame_log_digest"]

    def test_replicate_alone_changes_nothing(self):
        assert _norm(run_mesh(replicate=0, **_FAST)) == \
            _norm(run_mesh(replicate=9, **_FAST))

    @pytest.mark.parametrize("protocol", MESH_PROTOCOLS)
    def test_all_mesh_protocols_run(self, protocol):
        metrics = run_mesh(protocol=protocol, **_FAST)
        assert metrics["n_frames"] > 0

    def test_trained_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown mesh protocol"):
            run_mesh(protocol="charm", **_FAST)

    def test_static_client_reports_no_handoffs(self):
        metrics = run_mesh(speed_mps=0.0, **_FAST)
        assert metrics["handoff_count"] == 0.0
        assert math.isnan(metrics["handoff_disruption_s"])

    def test_roaming_client_reports_handoff_metrics(self):
        metrics = run_mesh(duration=0.25, n_relays=3, speed_mps=30.0,
                           seed=2)
        assert metrics["handoff_count"] >= 1.0
        assert metrics["handoff_disruption_s"] >= 0.0

    def test_longer_chain_raises_hop_count(self):
        short = run_mesh(n_relays=2, duration=0.06)
        long = run_mesh(n_relays=3, duration=0.06)
        assert long["mean_hops"] > short["mean_hops"]

    def test_starved_ttl_kills_delivery(self):
        metrics = run_mesh(ttl=1, **_FAST)
        assert metrics["delivery_rate"] == 0.0
        assert metrics["ttl_drops"] > 0


class TestMeshRegistration:
    def test_registered_with_seed_param(self):
        spec = get_experiment("mesh")
        assert spec.seed_param == "seed"
        assert "replicate" in spec.params
        assert spec.params["phy_backend"] == "surrogate"
        assert spec.algorithms == MESH_PROTOCOLS

    def test_runs_through_registry(self):
        result = run("mesh", **_FAST)
        assert result.experiment == "mesh"
        assert "mbps" in result.aggregates
