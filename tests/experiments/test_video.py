"""The ``video`` experiment: registration, determinism, and the
acceptance comparison — rateless-over-PPR strictly beats plain ARQ's
decodable-frame rate at the same per-frame airtime budget, under both
PHY backends, at a pinned seed."""

import numpy as np
import pytest

from repro.experiments import api
from repro.experiments.video import run_video

#: Small pinned configuration exercised under both backends.
_TINY = dict(workload="generated", video_duration=0.8,
             video_bitrate_bps=1.2e5, mean_snr_db=8.0, seed=1)


class TestRegistration:
    def test_video_is_registered(self):
        assert "video" in api.experiment_names()

    def test_runs_through_the_registry(self):
        res = api.run("video", workload="generated",
                      video_duration=0.4, video_bitrate_bps=1.2e5,
                      seed=1)
        metrics = res.aggregates
        assert "dfr_gain" in metrics
        assert set(k.split("/")[0] for k in metrics if "/" in k) \
            == {"arq", "rateless"}


class TestValidation:
    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            run_video(scheme="fec")

    def test_unknown_scenario(self):
        with pytest.raises(ValueError):
            run_video(scenario="office", **_TINY)

    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            run_video(workload="netflix")


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run_video(**_TINY)
        b = run_video(**_TINY)
        assert a == b

    def test_seed_moves_the_digest(self):
        a = run_video(**_TINY)
        b = run_video(**dict(_TINY, seed=2))
        assert a["rateless/digest"] != b["rateless/digest"]

    def test_single_scheme_matches_both(self):
        """Each scheme's stream is independent, so running it alone
        reproduces its half of the ``both`` run exactly."""
        both = run_video(**_TINY)
        solo = run_video(scheme="rateless", **_TINY)
        for key, value in solo.items():
            assert both[key] == value


class TestAcceptance:
    @pytest.mark.parametrize("backend", ["surrogate", "full"])
    def test_rateless_beats_arq_at_equal_budget(self, backend):
        """The tentpole claim: strictly higher decodable-frame rate
        than plain ARQ under the identical per-frame airtime budget,
        reproducibly, under both PHY backends."""
        res = run_video(phy_backend=backend, **_TINY)
        assert res["rateless/decodable_frame_rate"] \
            > res["arq/decodable_frame_rate"]
        assert res["dfr_gain"] > 0
        # Equal budget: rateless may not spend materially more air
        # than the budget ARQ had available.
        assert res["rateless/poisoned_frames"] == 0

    def test_decodes_are_verified_bit_exact(self):
        """The experiment verifies every decode against the sent
        frame; with salvage disabled-by-threshold nothing can poison,
        and QoE metrics stay within [0, 1]."""
        res = run_video(salvage_max_error_prob=0.0, **_TINY)
        assert res["rateless/poisoned_frames"] == 0
        for scheme in ("arq", "rateless"):
            assert 0.0 <= res[f"{scheme}/decodable_frame_rate"] <= 1.0
            assert 0.0 <= res[f"{scheme}/deadline_miss_ratio"] <= 1.0
            assert res[f"{scheme}/rebuffer_time"] >= 0.0

    def test_reference_workload_runs(self):
        res = run_video(scheme="arq", video_duration=0.0)  # ignored
        assert res["arq/packets"] > 0
