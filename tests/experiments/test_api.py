"""Tests for the unified experiment API (registry, runner, caching)."""

import json

import numpy as np
import pytest

import pickle

from repro.experiments.api import (ExperimentExecutionError,
                                   ExperimentResult, Runner, Scenario,
                                   UnknownParameterError, derive_seeds,
                                   execute_task, experiment_names,
                                   get_experiment, list_experiments,
                                   load_all, register_experiment, run)

#: One registration per experiment module (and nothing else): the
#: figXX/tabXX reproductions plus the campaign matrix cells.
EXPECTED = {"cell", "fig01", "fig03", "fig05", "fig07", "fig08",
            "fig10", "fig13", "fig15", "fig16", "fig17", "mesh",
            "tab01", "tab02", "video"}


class TestRegistry:
    def test_every_module_registered_exactly_once(self):
        # Test suites may register throwaway experiments (e.g. the
        # campaign fixtures), so restrict the exactness claim to the
        # repro.experiments tree.
        builtin = {name for name in experiment_names()
                   if get_experiment(name).fn.__module__.startswith(
                       "repro.experiments.")}
        assert builtin == EXPECTED
        modules = [get_experiment(name).fn.__module__
                   for name in sorted(builtin)]
        assert len(set(modules)) == len(modules)

    def test_specs_are_described(self):
        for spec in list_experiments():
            assert spec.description
            assert isinstance(spec.params, dict)

    def test_seed_params_exist_in_parameter_space(self):
        load_all()
        for spec in list_experiments():
            if spec.seed_param is not None:
                assert spec.seed_param in spec.params, spec.name

    def test_unknown_experiment_lists_available(self):
        with pytest.raises(KeyError, match="fig13"):
            get_experiment("fig99")


class TestSpecValidation:
    def test_unknown_key_rejected(self):
        spec = get_experiment("fig01")
        with pytest.raises(UnknownParameterError, match="bogus"):
            spec.scenario({"bogus": 1})

    def test_run_rejects_unknown_key(self):
        with pytest.raises(UnknownParameterError):
            run("fig01", not_a_param=3)

    def test_overrides_merge_over_defaults(self):
        scenario = get_experiment("fig01").scenario({"seed": 42})
        assert scenario.params["seed"] == 42
        assert scenario.params["detail_start"] == 4.0

    def test_content_hash_stable_and_sensitive(self):
        spec = get_experiment("fig01")
        a = spec.scenario({"seed": 1}).content_hash()
        b = spec.scenario({"seed": 1}).content_hash()
        c = spec.scenario({"seed": 2}).content_hash()
        assert a == b
        assert a != c

    def test_tuple_and_list_params_hash_identically(self):
        spec = get_experiment("fig13")
        a = spec.scenario({"client_counts": (1, 2)}).content_hash()
        b = spec.scenario({"client_counts": [1, 2]}).content_hash()
        assert a == b


class TestRunner:
    def test_run_returns_uniform_result(self):
        result = run("fig01", duration=2.0)
        assert result.experiment == "fig01"
        assert result.params["duration"] == 2.0
        assert result.seeds == [None]
        assert len(result.per_seed) == 1
        assert result.aggregates == result.per_seed[0]
        assert result.raw is not None
        assert "fade_depth_db" in result.aggregates

    def test_registry_run_equals_direct_wrapper(self):
        from repro.experiments.fig01_channel import run_fig1
        direct = run_fig1(seed=4, duration=2.0)
        via = run("fig01", seed=4, duration=2.0)
        assert via.raw.fade_depth_db() == direct.fade_depth_db()
        assert via.aggregates["fade_depth_db"] == \
            direct.fade_depth_db()

    def test_cache_hit_is_bit_identical(self, tmp_path):
        runner = Runner(jobs=1, cache_dir=str(tmp_path / "cache"))
        first = runner.run("fig01", {"duration": 2.0})
        second = runner.run("fig01", {"duration": 2.0})
        assert not first.cached
        assert second.cached
        assert second.to_json() == first.to_json()

    def test_cache_respects_params_and_seeds(self, tmp_path):
        runner = Runner(jobs=1, cache_dir=str(tmp_path / "cache"))
        base = runner.run("fig01", {"duration": 2.0})
        other = runner.run("fig01", {"duration": 2.5})
        fanned = runner.run("fig01", {"duration": 2.0}, seeds=[1, 2])
        assert not other.cached and other.cache_key != base.cache_key
        assert not fanned.cached and fanned.cache_key != base.cache_key

    def test_parallel_equals_serial(self, tmp_path):
        serial = Runner(jobs=1, cache_dir=str(tmp_path / "a")).run(
            "fig01", {"duration": 2.0}, seeds=[1, 2])
        parallel = Runner(jobs=2, cache_dir=str(tmp_path / "b")).run(
            "fig01", {"duration": 2.0}, seeds=[1, 2])
        assert parallel.per_seed == serial.per_seed
        assert parallel.aggregates == serial.aggregates
        assert parallel.seeds == serial.seeds
        assert parallel.cache_key == serial.cache_key

    def test_fanned_result_omits_stale_seed_param(self, tmp_path):
        runner = Runner(jobs=1, cache_dir=str(tmp_path),
                        use_cache=False)
        fanned = runner.run("fig01", {"duration": 2.0}, seeds=[5, 6])
        # The base seed default was rewritten per replicate; recording
        # it would misstate what ran — `seeds` is authoritative.
        assert "seed" not in fanned.params
        assert fanned.seeds == [5, 6]
        single = runner.run("fig01", {"duration": 2.0})
        assert single.params["seed"] == 1

    def test_seed_fan_rewrites_seed_param(self, tmp_path):
        runner = Runner(jobs=1, cache_dir=str(tmp_path / "cache"),
                        use_cache=False)
        fanned = runner.run("fig01", {"duration": 2.0}, seeds=[1, 9])
        assert fanned.seeds == [1, 9]
        assert len(fanned.per_seed) == 2
        # Different seeds -> different trajectories.
        assert fanned.per_seed[0]["fade_depth_db"] != \
            fanned.per_seed[1]["fade_depth_db"]
        mean = np.mean([m["fade_depth_db"] for m in fanned.per_seed])
        assert fanned.aggregates["fade_depth_db"] == \
            pytest.approx(float(mean))

    def test_tuple_seed_param_gets_singleton(self):
        scenario = get_experiment("fig13").scenario().with_seed(7)
        assert scenario.params["seeds"] == (7,)

    def test_sweep_runs_each_value(self, tmp_path):
        runner = Runner(jobs=1, cache_dir=str(tmp_path / "cache"))
        results = runner.sweep("fig01", "seed", [1, 2])
        assert [r.params["seed"] for r in results] == [1, 2]
        cached = runner.sweep("fig01", "seed", [1, 2])
        assert all(r.cached for r in cached)
        assert [r.to_json() for r in cached] == \
            [r.to_json() for r in results]

    def test_derive_seeds_deterministic(self):
        assert derive_seeds(0, 3) == derive_seeds(0, 3)
        assert derive_seeds(0, 3) != derive_seeds(1, 3)
        assert len(set(derive_seeds(0, 8))) == 8


class TestResultSerialization:
    def test_json_roundtrip(self):
        result = run("fig01", duration=2.0)
        restored = ExperimentResult.from_json(result.to_json())
        assert restored.to_json() == result.to_json()
        assert restored.aggregates == result.aggregates

    def test_nan_metrics_serialize_as_strict_json(self):
        result = ExperimentResult(
            experiment="x", params={}, seeds=[None],
            per_seed=[{"m": float("nan")}],
            aggregates={"m": float("nan")}, cache_key="0")
        text = result.to_json()
        assert "NaN" not in text
        restored = ExperimentResult.from_json(text)
        assert np.isnan(restored.aggregates["m"])
        assert np.isnan(restored.per_seed[0]["m"])
        assert restored.to_json() == text

    def test_save_json_and_npz(self, tmp_path):
        result = run("fig01", duration=2.0)
        jpath = tmp_path / "r.json"
        zpath = tmp_path / "r.npz"
        result.save(str(jpath))
        result.save(str(zpath))
        data = json.loads(jpath.read_text())
        assert data["experiment"] == "fig01"
        npz = np.load(str(zpath))
        assert float(npz["aggregate/fade_depth_db"]) == \
            result.aggregates["fade_depth_db"]
        assert json.loads(str(npz["metadata"]))["experiment"] == \
            "fig01"


class TestDeterministicExperiments:
    def test_tab02_has_no_seed(self):
        spec = get_experiment("tab02")
        assert spec.seed_param is None
        scenario = spec.scenario()
        assert scenario.with_seed(5) is scenario

    def test_seed_fan_rejected_for_seedless_experiment(self, tmp_path):
        runner = Runner(jobs=1, cache_dir=str(tmp_path),
                        use_cache=False)
        with pytest.raises(ValueError, match="deterministic"):
            runner.run("tab02", seeds=[1, 2])
        with pytest.raises(ValueError, match="deterministic"):
            runner.sweep("fig15", "protocol", ["softrate"],
                         seeds=[1, 2])

    def test_tab02_runs(self):
        result = run("tab02")
        assert result.aggregates["n_rates"] == 8.0
        assert result.aggregates["n_prototype"] == 6.0
        assert "18 Mbps" in result.raw.render()


class TestBatchSizeKnob:
    """batch_size is a performance-only parameter: injected by the
    Runner where declared, excluded from cache identity."""

    def test_spec_declares_batching_support(self):
        assert get_experiment("fig07").supports_batching
        assert get_experiment("fig08").supports_batching
        assert not get_experiment("fig01").supports_batching

    def test_batch_size_excluded_from_content_hash(self):
        spec = get_experiment("fig07")
        a = spec.scenario({"batch_size": 1}).content_hash()
        b = spec.scenario({"batch_size": 64}).content_hash()
        assert a == b
        c = spec.scenario({"payload_bits": 8}).content_hash()
        assert c != a

    def test_runner_injects_batch_size_where_declared(self, tmp_path):
        runner = Runner(jobs=1, cache_dir=str(tmp_path),
                        use_cache=False, batch_size=2)
        result = runner.run("fig07", {"payload_bits": 104,
                                      "frames_per_point": 1})
        assert result.params["batch_size"] == 2
        # fig01 has no batch_size parameter; the injection must not
        # trip the spec's unknown-parameter validation.
        result = runner.run("fig01", {"duration": 0.2})
        assert "batch_size" not in result.params

    def test_explicit_override_beats_runner_default(self, tmp_path):
        runner = Runner(jobs=1, cache_dir=str(tmp_path),
                        use_cache=False, batch_size=2)
        result = runner.run("fig07", {"payload_bits": 104,
                                      "frames_per_point": 1,
                                      "batch_size": 3})
        assert result.params["batch_size"] == 3

    def test_cache_hit_across_batch_sizes(self, tmp_path):
        """A result cached at one batch_size serves every other one —
        legitimate only because results are provably identical."""
        overrides = {"payload_bits": 104, "frames_per_point": 1}
        first = Runner(jobs=1, cache_dir=str(tmp_path),
                       batch_size=1).run("fig07", overrides)
        second = Runner(jobs=1, cache_dir=str(tmp_path),
                        batch_size=4).run("fig07", overrides)
        assert not first.cached
        assert second.cached
        assert second.aggregates == first.aggregates
        # The hit's record reflects the batch_size asked for *now*,
        # not the one the cached run happened to use.
        assert second.params["batch_size"] == 4


class TestProtocolRegistry:
    def test_all_protocols_resolve(self):
        from repro.experiments.common import (PROTOCOL_NAMES,
                                              protocol_factory)
        from repro.phy.rates import RATE_TABLE
        from repro.traces.synthetic import constant_trace

        trace = constant_trace(best_rate=3, duration=1.0)
        rates = RATE_TABLE.prototype_subset()
        for name in PROTOCOL_NAMES:
            factory = protocol_factory(name, training_trace=trace)
            adapter = factory(rates, trace)
            assert 0 <= adapter.choose_rate(0.0) < len(rates), name

    def test_trained_protocols_require_trace(self):
        from repro.experiments.common import protocol_factory
        for name in ("snr", "charm"):
            with pytest.raises(ValueError):
                protocol_factory(name)

    def test_unknown_protocol_rejected(self):
        from repro.experiments.common import protocol_factory
        with pytest.raises(ValueError, match="available"):
            protocol_factory("wishful-thinking")


class TestPhyBackendKnob:
    """phy_backend: injected by the Runner where declared, but —
    unlike batch_size — part of cache identity (the surrogate is
    calibrated, not bit-exact)."""

    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(ValueError) as excinfo:
            Runner(phy_backend="warp-drive")
        message = str(excinfo.value)
        assert "warp-drive" in message
        assert "full" in message and "surrogate" in message

    def test_backend_included_in_content_hash(self):
        spec = get_experiment("fig07")
        a = spec.scenario({"phy_backend": "full"}).content_hash()
        b = spec.scenario({"phy_backend": "surrogate"}).content_hash()
        assert a != b

    def test_runner_injects_backend_where_declared(self, tmp_path):
        runner = Runner(jobs=1, cache_dir=str(tmp_path),
                        use_cache=False, phy_backend="surrogate")
        result = runner.run("fig07", {"payload_bits": 104,
                                      "frames_per_point": 1})
        assert result.params["phy_backend"] == "surrogate"
        # fig01 declares no phy_backend; injection must not trip the
        # unknown-parameter validation.
        result = runner.run("fig01", {"duration": 0.2})
        assert "phy_backend" not in result.params

    def test_explicit_override_beats_runner_default(self, tmp_path):
        runner = Runner(jobs=1, cache_dir=str(tmp_path),
                        use_cache=False, phy_backend="surrogate")
        result = runner.run("fig07", {"payload_bits": 104,
                                      "frames_per_point": 1,
                                      "phy_backend": "full"})
        assert result.params["phy_backend"] == "full"

    def test_surrogate_and_full_cache_separately(self, tmp_path):
        overrides = {"payload_bits": 104, "frames_per_point": 1}
        full = Runner(cache_dir=str(tmp_path),
                      phy_backend="full").run("fig07", overrides)
        surrogate = Runner(cache_dir=str(tmp_path),
                           phy_backend="surrogate").run("fig07",
                                                        overrides)
        assert not full.cached
        assert not surrogate.cached      # distinct cache entries

    def test_unknown_backend_surfaces_from_experiment(self):
        spec = get_experiment("fig07")
        with pytest.raises(ValueError, match="available"):
            spec.fn(payload_bits=104, frames_per_point=1,
                    phy_backend="bogus")

    def test_tcp_experiments_declare_backend(self):
        for name in ("fig13", "fig16"):
            assert "phy_backend" in get_experiment(name).params

    def test_surrogate_hash_tracks_calibration_table(self, monkeypatch):
        """Recalibrating must invalidate cached surrogate results."""
        import repro.phy.calibration as calibration

        spec = get_experiment("fig07")
        monkeypatch.setattr(calibration, "default_fingerprint",
                            lambda: "aaaa")
        before = spec.scenario({"phy_backend": "surrogate"}).content_hash()
        monkeypatch.setattr(calibration, "default_fingerprint",
                            lambda: "bbbb")
        after = spec.scenario({"phy_backend": "surrogate"}).content_hash()
        assert before != after
        # The full backend does not depend on the table.
        monkeypatch.setattr(calibration, "default_fingerprint",
                            lambda: "aaaa")
        full_a = spec.scenario({"phy_backend": "full"}).content_hash()
        monkeypatch.setattr(calibration, "default_fingerprint",
                            lambda: "bbbb")
        assert spec.scenario({"phy_backend": "full"}).content_hash() \
            == full_a


@register_experiment(
    "api-fragile",
    description="throwaway experiment that fails on demand",
    params={"boom": 0, "seed": 1})
def _run_fragile(boom=0, seed=1):
    """Raises when asked; the execution-error wrapping fixture."""
    if boom:
        raise ZeroDivisionError("requested failure")
    return {"value": float(seed)}


class TestExecutionError:
    def test_execute_task_wraps_failures_with_context(self):
        with pytest.raises(ExperimentExecutionError) as info:
            execute_task("api-fragile", __name__,
                         {"boom": 1, "seed": 7})
        err = info.value
        assert err.experiment == "api-fragile"
        assert "ZeroDivisionError" in str(err)
        assert "requested failure" in err.traceback_text
        assert isinstance(err.__cause__, ZeroDivisionError)

    def test_execute_task_success_untouched(self):
        metrics = execute_task("api-fragile", __name__,
                               {"boom": 0, "seed": 7})
        assert metrics["value"] == 7.0

    def test_pickle_roundtrip_preserves_attribution(self):
        err = ExperimentExecutionError("msg", experiment="cell",
                                       traceback_text="tb lines")
        clone = pickle.loads(pickle.dumps(err))
        assert str(clone) == "msg"
        assert clone.experiment == "cell"
        assert clone.traceback_text == "tb lines"
