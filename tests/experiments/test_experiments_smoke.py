"""Smoke tests for the experiment modules (small configurations).

The full-scale shape assertions live in ``benchmarks/``; these tests
verify the experiment plumbing itself — structure, invariants, and
basic sanity at reduced scale — so `pytest tests/` covers every module.
"""

import numpy as np
import pytest

from repro.experiments.common import (CALIBRATED_SEPARATION,
                                      averaged_tcp_throughput,
                                      rraa_factory, samplerate_factory,
                                      snr_untrained_factory,
                                      softrate_factory,
                                      standard_algorithms)
from repro.experiments.fig01_channel import run_fig1
from repro.experiments.fig05_crossrate import run_fig5
from repro.experiments.fig15_convergence import run_fig15
from repro.experiments.tab01_silent import run_silent_loss_experiment
from repro.rateadapt import SoftRate
from repro.traces.synthetic import constant_trace


class TestFig1:
    def test_panels_shapes(self):
        data = run_fig1(seed=1)
        assert data.window_times.shape == data.window_snr_db.shape
        assert data.detail_times.shape == data.detail_snr_db.shape
        assert data.ber.shape == data.ber_times.shape
        assert data.fade_depth_db() > 0


class TestFig5:
    def test_pairs_structure(self):
        data = run_fig5(seed=5, duration=2.0)
        assert set(data.pairs) == set(range(6))
        assert 0.0 <= data.monotone_fraction() <= 1.0


class TestTab01:
    def test_small_run(self):
        result = run_silent_loss_experiment(duration=1.0)
        assert set(result.silent_fraction) == {1, 2}
        for fraction in result.silent_fraction.values():
            assert 0.0 <= fraction <= 1.0
        assert all(n > 10 for n in result.frames_sent.values())


class TestFig15:
    def test_softrate_converges_fast(self):
        result = run_fig15(lambda rates, trace: SoftRate(rates),
                           duration=4.0)
        times = result.convergence_times()
        assert times["to_bad"] and times["to_good"]
        assert np.median(times["to_bad"]) < 0.01


class TestCommonFactories:
    def test_factories_build(self):
        from repro.phy.rates import RATE_TABLE
        rates = RATE_TABLE.prototype_subset()
        trace = constant_trace(best_rate=3, duration=1.0)
        for factory in (softrate_factory, rraa_factory,
                        samplerate_factory, snr_untrained_factory()):
            adapter = factory(rates, trace)
            assert 0 <= adapter.choose_rate(0.0) < len(rates)

    def test_standard_algorithms_cover_fig13(self):
        trace = constant_trace(best_rate=3, duration=1.0)
        names = [name for name, _f in standard_algorithms(trace)]
        assert names == ["Omniscient", "SoftRate", "SNR (trained)",
                         "CHARM", "RRAA", "SampleRate"]

    def test_calibrated_separation_documented(self):
        assert CALIBRATED_SEPARATION >= 100.0

    def test_averaged_throughput_runs(self):
        traces = [constant_trace(best_rate=3, duration=1.0)]
        outcome = averaged_tcp_throughput(
            traces, traces, softrate_factory, n_clients=1,
            duration=0.5, seeds=(1,))
        assert outcome["mbps"] > 0
        assert len(outcome["per_seed"]) == 1
