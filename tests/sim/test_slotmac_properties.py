"""Property-based invariants of the slot-synchronous engine.

Hypothesis drives random (protocol, client count, seed, horizon)
scenarios through :func:`run_slot_contention` with per-round
recording on, and asserts the state-transition invariants the
engine's vectorisation is built on:

* **Backoff freeze monotonicity** — a station that loses a round
  decrements its counter by exactly the idle slots counted (``k``)
  and never below zero; counters only ever *increase* via a winner's
  post-transmission redraw.
* **Round structure** — the winners are exactly the argmin set of the
  counter array, rounds anchor at strictly increasing times, and each
  round's closing state is the next round's opening state.
* **CW/retry discipline** — contention windows stay on the 802.11
  doubling chain between ``cw_min`` and ``cw_max``, retries stay
  below the retry limit, and redraws land within the current window.
"""

from hypothesis import given, settings, strategies as st

from repro.experiments.common import protocol_factory
from repro.sim.mac import MacConfig
from repro.sim.slotmac import run_slot_contention
from repro.traces.workloads import static_short_range_traces

_CFG = MacConfig()

#: Every contention window reachable by doubling cw_min up to cw_max.
_CW_CHAIN = set()
_w = _CFG.cw_min
while True:
    _CW_CHAIN.add(_w)
    if _w >= _CFG.cw_max:
        break
    _w = min(2 * _w + 1, _CFG.cw_max)

_TRACES = static_short_range_traces(2, duration=0.15,
                                    mean_snr_db=14.0, seed=42,
                                    payload_bits=368)

_SCENARIO = dict(
    protocol=st.sampled_from(["softrate", "rraa"]),
    n_clients=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**20),
    duration=st.sampled_from([0.01, 0.02, 0.04]),
)


def _periods(protocol, n_clients, seed, duration):
    sink = []
    run_slot_contention(_TRACES, protocol_factory(protocol),
                        n_clients=n_clients, duration=duration,
                        seed=seed, phy_backend="surrogate",
                        record_periods=True, _engine_out=sink)
    (engine,) = sink
    return engine.period_log


@settings(max_examples=20, deadline=None)
@given(**_SCENARIO)
def test_backoff_freeze_monotonicity(protocol, n_clients, seed,
                                     duration):
    for record in _periods(protocol, n_clients, seed, duration):
        assert record.k == min(record.backoff_before)
        assert record.k >= 0
        for sid in range(1, n_clients + 1):
            i = sid - 1
            if sid in record.winners:
                continue
            # Losers: exactly the idle slots elapsed, never negative.
            assert record.backoff_after[i] == \
                record.backoff_before[i] - record.k
            assert record.backoff_after[i] >= 0


@settings(max_examples=20, deadline=None)
@given(**_SCENARIO)
def test_round_structure(protocol, n_clients, seed, duration):
    periods = _periods(protocol, n_clients, seed, duration)
    for record in periods:
        want = {sid for sid in range(1, n_clients + 1)
                if record.backoff_before[sid - 1] == record.k}
        assert set(record.winners) == want
        assert record.winners
    anchors = [record.anchor for record in periods]
    assert anchors == sorted(anchors)
    assert len(set(anchors)) == len(anchors)
    for prev, nxt in zip(periods, periods[1:]):
        # The round's closing counters are the next round's opening
        # counters: nothing moves between rounds.
        assert prev.backoff_after == nxt.backoff_before


@settings(max_examples=20, deadline=None)
@given(**_SCENARIO)
def test_cw_and_retry_discipline(protocol, n_clients, seed, duration):
    for record in _periods(protocol, n_clients, seed, duration):
        for sid in range(1, n_clients + 1):
            i = sid - 1
            assert record.cw[i] in _CW_CHAIN
            assert 0 <= record.retry[i] < _CFG.retry_limit
            if sid in record.winners:
                # The post-transmission redraw lands in [0, cw].
                assert 0 <= record.backoff_after[i] <= record.cw[i]


@settings(max_examples=10, deadline=None)
@given(**_SCENARIO)
def test_period_log_is_deterministic(protocol, n_clients, seed,
                                     duration):
    assert _periods(protocol, n_clients, seed, duration) == \
        _periods(protocol, n_clients, seed, duration)
