"""Oracle-parity wall: the slot engine must match the event engine.

The slot-synchronous engine (:mod:`repro.sim.slotmac`) earns its
1000-station scale only because on every scenario both engines
support, its frame logs are **bit for bit** identical to the
event-driven MAC's — same timestamps, same rate choices, same fates,
same retry counters.  These tests run the same saturated contention
scenarios through both engines across client counts, protocols and
PHY backends and assert exact :class:`FrameLogEntry` equality (and
therefore equal ``frame_log_digest`` values).  If a MAC change breaks
this, the slot engine is no longer simulating the same protocol and
``contention-xl`` results mean nothing.
"""

import pytest

from repro.analysis.metrics import frame_log_digest
from repro.experiments.common import protocol_factory
from repro.sim.slotmac import run_slot_contention
from repro.sim.topology import run_mac_contention
from repro.traces.workloads import static_short_range_traces

_PAYLOAD_BITS = 368


@pytest.fixture(scope="module")
def traces():
    return static_short_range_traces(
        4, duration=0.2, mean_snr_db=14.0, seed=42,
        payload_bits=_PAYLOAD_BITS)


def _both(traces, protocol, n_clients, backend, duration=0.05, seed=3):
    kwargs = dict(n_clients=n_clients, duration=duration,
                  payload_bits=_PAYLOAD_BITS, seed=seed,
                  phy_backend=backend)
    event = run_mac_contention(traces, protocol_factory(protocol),
                               **kwargs)
    slot = run_slot_contention(traces, protocol_factory(protocol),
                               **kwargs)
    return event, slot


@pytest.mark.parametrize("backend", [None, "surrogate"])
@pytest.mark.parametrize("protocol", ["softrate", "rraa"])
@pytest.mark.parametrize("n_clients", [2, 3, 5, 10])
def test_frame_logs_bit_identical(traces, backend, protocol,
                                  n_clients):
    event, slot = _both(traces, protocol, n_clients, backend)
    assert event.frame_logs == slot.frame_logs
    assert frame_log_digest(event.frame_logs) == \
        frame_log_digest(slot.frame_logs)


@pytest.mark.parametrize("protocol", ["samplerate", "snr-untrained"])
def test_other_protocols_match_too(traces, protocol):
    # SampleRate is the airtime-accounting stress case: its rate
    # choice compares raw airtimes strictly, so even a one-ulp
    # difference in what the engines hand their adapters diverges.
    event, slot = _both(traces, protocol, 3, "surrogate")
    assert event.frame_logs == slot.frame_logs


def test_full_backend_matches(traces):
    # One point under the full BCJR pipeline: tiny horizon, every
    # frame decoded for real on both sides.
    event, slot = _both(traces, "softrate", 2, "full", duration=0.01)
    assert event.frame_logs == slot.frame_logs


def test_single_station_matches(traces):
    event, slot = _both(traces, "softrate", 1, "surrogate")
    assert event.frame_logs == slot.frame_logs
    assert event.per_client_frames == slot.per_client_frames


@pytest.mark.parametrize("duration", [0.013, 0.05])
def test_horizon_edge_matches(traces, duration):
    """Frames still in flight when the clock runs out conclude in
    neither engine — the duration cutoffs must agree exactly."""
    event, slot = _both(traces, "rraa", 5, None, duration=duration)
    assert event.frame_logs == slot.frame_logs


def test_results_agree_beyond_the_logs(traces):
    event, slot = _both(traces, "softrate", 5, "surrogate")
    assert event.per_client_frames == slot.per_client_frames
    assert event.aggregate_mbps == slot.aggregate_mbps
    assert event.channel_stats == slot.channel_stats


@pytest.mark.parametrize("seed", [1, 7, 2009])
def test_parity_across_seeds(traces, seed):
    event, slot = _both(traces, "softrate", 3, "surrogate", seed=seed)
    assert event.frame_logs == slot.frame_logs


def test_parity_under_total_loss():
    """A dead link exercises the silent-loss and retry-limit drop
    paths; the engines must still agree on every abandoned attempt."""
    lossy = static_short_range_traces(2, duration=0.2,
                                      mean_snr_db=-40.0, seed=42,
                                      payload_bits=_PAYLOAD_BITS)
    event, slot = _both(lossy, "softrate", 2, "surrogate")
    assert event.frame_logs == slot.frame_logs
    assert event.per_client_frames == slot.per_client_frames == [0, 0]
