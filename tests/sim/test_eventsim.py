"""Tests for the discrete-event engine."""

import pytest

from repro.sim.eventsim import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run_until(10.0)
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(1.0, lambda: order.append(2))
        sim.run_until(2.0)
        assert order == [1, 2]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run_until(5.0)
        assert seen == [1.5]
        assert sim.now == 5.0

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            sim.schedule(1.0, lambda: seen.append(sim.now))

        sim.schedule(1.0, outer)
        sim.run_until(10.0)
        assert seen == [2.0]

    def test_run_until_excludes_later_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append("late"))
        sim.run_until(4.0)
        assert seen == []
        sim.run_until(6.0)
        assert seen == ["late"]

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)
        sim.run_until(5.0)
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        seen = []
        handle = sim.schedule(1.0, lambda: seen.append("x"))
        handle.cancel()
        sim.run_until(2.0)
        assert seen == []

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        seen = []
        handle = sim.schedule(1.0, lambda: seen.append("x"))
        sim.run_until(2.0)
        handle.cancel()
        assert seen == ["x"]


class TestCancelledAccounting:
    def test_max_events_bounds_cancelled_heap(self):
        # A heap stuffed with cancelled events must not defeat the
        # max_events bound: popped entries count, cancelled or not.
        sim = Simulator()
        fired = []
        for _ in range(100):
            sim.schedule(1.0, lambda: fired.append("x")).cancel()
        sim.schedule(2.0, lambda: fired.append("live"))
        sim.run(max_events=50)
        assert fired == []          # bound hit while draining cancels
        sim.run(max_events=100)
        assert fired == ["live"]

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        live = [sim.schedule(1.0, lambda: None) for _ in range(3)]
        dead = [sim.schedule(1.0, lambda: None) for _ in range(5)]
        for handle in dead:
            handle.cancel()
        assert sim.pending_events == 3
        live[0].cancel()
        assert sim.pending_events == 2
        live[0].cancel()            # double-cancel must not double-count
        assert sim.pending_events == 2
        sim.run_until(2.0)
        assert sim.pending_events == 0


class TestRun:
    def test_run_drains_queue(self):
        sim = Simulator()
        seen = []
        for i in range(5):
            sim.schedule(float(i), lambda i=i: seen.append(i))
        sim.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_max_events_bounds_runaway(self):
        sim = Simulator()
        count = [0]

        def rearm():
            count[0] += 1
            sim.schedule(1.0, rearm)

        sim.schedule(1.0, rearm)
        sim.run(max_events=10)
        assert count[0] == 10
