"""Tests for the wireless channel's collision geometry."""

import numpy as np
import pytest

from repro.sim.wireless import MacFrame, Transmission, WirelessChannel
from repro.traces.synthetic import constant_trace


def _frame(src=1, dest=0, seq=0):
    return MacFrame(src=src, dest=dest, seq=seq, payload=None,
                    payload_bits=11200)


def _tx(frame, start, duration, rate=3, preamble=16e-6, postamble=8e-6):
    return Transmission(frame=frame, rate_index=rate, start=start,
                        end=start + duration,
                        preamble_end=start + preamble,
                        postamble_start=start + duration - postamble)


def _channel(detect_prob=1.0, use_postambles=True, cs=None, seed=0):
    trace = constant_trace(best_rate=5, duration=1.0)
    traces = {(1, 0): trace, (2, 0): trace, (0, 1): trace, (2, 3): trace}
    return WirelessChannel(traces, np.random.default_rng(seed),
                           detect_prob=detect_prob,
                           use_postambles=use_postambles,
                           carrier_sense_prob=cs)


class TestCleanPath:
    def test_clean_frame_delivers_with_feedback(self):
        channel = _channel()
        tx = _tx(_frame(), 0.0, 1e-3)
        channel.begin_transmission(tx)
        fate = channel.conclude_transmission(tx)
        assert fate.kind == "clean"
        assert fate.delivered
        assert fate.feedback.frame_ok
        assert fate.feedback.seq == tx.frame.seq

    def test_rate_above_channel_fails_with_feedback(self):
        trace = constant_trace(best_rate=2, duration=1.0)
        channel = WirelessChannel({(1, 0): trace},
                                  np.random.default_rng(0))
        tx = _tx(_frame(), 0.0, 1e-3, rate=5)
        channel.begin_transmission(tx)
        fate = channel.conclude_transmission(tx)
        assert fate.kind == "clean"
        assert not fate.delivered
        assert fate.feedback is not None          # header still decoded
        assert not fate.feedback.frame_ok


class TestCollisions:
    def test_first_frame_collided_second_postamble(self):
        channel = _channel()
        first = _tx(_frame(src=1), 0.0, 1e-3)
        second = _tx(_frame(src=2), 0.4e-3, 1e-3)   # ends later
        channel.begin_transmission(first)
        channel.begin_transmission(second)
        fate1 = channel.conclude_transmission(first)
        fate2 = channel.conclude_transmission(second)
        assert fate1.kind == "collided"
        assert not fate1.delivered
        assert fate1.feedback is not None
        assert fate2.kind == "postamble"
        assert fate2.feedback.postamble_only

    def test_contained_frame_is_silent(self):
        channel = _channel()
        big = _tx(_frame(src=1), 0.0, 2e-3)
        small = _tx(_frame(src=2), 0.5e-3, 0.5e-3)   # fully inside
        channel.begin_transmission(big)
        channel.begin_transmission(small)
        assert channel.conclude_transmission(small).kind == "silent"

    def test_postambles_disabled_means_silent(self):
        channel = _channel(use_postambles=False)
        first = _tx(_frame(src=1), 0.0, 1e-3)
        second = _tx(_frame(src=2), 0.4e-3, 1e-3)
        channel.begin_transmission(first)
        channel.begin_transmission(second)
        assert channel.conclude_transmission(second).kind == "silent"

    def test_detection_probability_zero_reports_noise(self):
        channel = _channel(detect_prob=0.0)
        first = _tx(_frame(src=1), 0.0, 1e-3)
        second = _tx(_frame(src=2), 0.4e-3, 1e-3)
        channel.begin_transmission(first)
        channel.begin_transmission(second)
        fate = channel.conclude_transmission(first)
        assert fate.kind == "collided"
        assert not fate.interference_detected
        assert fate.feedback.ber > 0.01           # looks like noise

    def test_detection_probability_one_reports_clean_ber(self):
        channel = _channel(detect_prob=1.0)
        first = _tx(_frame(src=1), 0.0, 1e-3)
        second = _tx(_frame(src=2), 0.4e-3, 1e-3)
        channel.begin_transmission(first)
        channel.begin_transmission(second)
        fate = channel.conclude_transmission(first)
        assert fate.interference_detected
        assert fate.feedback.ber < 1e-3           # channel is clean

    def test_rts_protected_frame_ignores_overlap(self):
        channel = _channel()
        protected = _tx(_frame(src=1), 0.0, 1e-3)
        protected.rts_protected = True
        other = _tx(_frame(src=2), 0.4e-3, 1e-3)
        channel.begin_transmission(protected)
        channel.begin_transmission(other)
        fate = channel.conclude_transmission(protected)
        assert fate.kind == "clean"
        assert fate.delivered

    def test_receiver_transmitting_is_deaf(self):
        channel = _channel()
        # Station 0 transmits while station 1 sends to it.
        from_zero = _tx(_frame(src=0, dest=1), 0.0, 2e-3)
        to_zero = _tx(_frame(src=1, dest=0), 0.5e-3, 0.5e-3)
        channel.begin_transmission(from_zero)
        channel.begin_transmission(to_zero)
        assert channel.conclude_transmission(to_zero).kind == "silent"

    def test_different_receivers_still_interfere(self):
        # Single collision domain: a frame for station 3 still corrupts
        # reception at station 0.
        channel = _channel()
        to_ap = _tx(_frame(src=1, dest=0), 0.0, 1e-3)
        other = _tx(_frame(src=2, dest=3), 0.4e-3, 1e-3)
        channel.begin_transmission(to_ap)
        channel.begin_transmission(other)
        assert channel.conclude_transmission(to_ap).kind == "collided"


class TestCarrierSense:
    def test_perfect_sense_sees_busy(self):
        channel = _channel()
        tx = _tx(_frame(src=1), 0.0, 1e-3)
        channel.begin_transmission(tx)
        assert channel.medium_busy_until(2, 0.5e-3) == pytest.approx(1e-3)

    def test_own_transmission_always_sensed(self):
        channel = _channel(cs=lambda a, b: 0.0)
        tx = _tx(_frame(src=1), 0.0, 1e-3)
        channel.begin_transmission(tx)
        assert channel.medium_busy_until(1, 0.5e-3) is not None

    def test_hidden_terminal_never_senses(self):
        channel = _channel(cs=lambda a, b: 0.0)
        tx = _tx(_frame(src=1), 0.0, 1e-3)
        channel.begin_transmission(tx)
        assert channel.medium_busy_until(2, 0.5e-3) is None

    def test_sense_sample_is_sticky(self):
        # One transmission must look consistently busy or consistently
        # hidden to a given listener, not flip per query.
        channel = _channel(cs=lambda a, b: 0.5, seed=3)
        tx = _tx(_frame(src=1), 0.0, 1e-3)
        channel.begin_transmission(tx)
        first = channel.medium_busy_until(2, 0.1e-3)
        for _ in range(10):
            assert channel.medium_busy_until(2, 0.1e-3) == first

    def test_idle_after_end(self):
        channel = _channel()
        tx = _tx(_frame(src=1), 0.0, 1e-3)
        channel.begin_transmission(tx)
        assert channel.medium_busy_until(2, 1.5e-3) is None


class TestValidation:
    def test_missing_trace_rejected(self):
        channel = _channel()
        tx = _tx(_frame(src=9, dest=9), 0.0, 1e-3)
        channel.begin_transmission(tx)
        with pytest.raises(KeyError):
            channel.conclude_transmission(tx)

    def test_detect_prob_validated(self):
        with pytest.raises(ValueError):
            WirelessChannel({}, np.random.default_rng(0),
                            detect_prob=1.5)
