"""Unit tests for the slot-synchronous contention engine itself."""

import numpy as np
import pytest

from repro.analysis.metrics import frame_log_digest
from repro.experiments.common import protocol_factory
from repro.sim.mac import MacConfig
from repro.sim.slotmac import run_slot_contention
from repro.traces.workloads import static_short_range_traces

_PAYLOAD_BITS = 368


@pytest.fixture(scope="module")
def traces():
    return static_short_range_traces(
        2, duration=0.2, mean_snr_db=14.0, seed=42,
        payload_bits=_PAYLOAD_BITS)


def run(traces, **overrides):
    kwargs = dict(n_clients=2, duration=0.03,
                  payload_bits=_PAYLOAD_BITS, seed=3,
                  phy_backend="surrogate")
    kwargs.update(overrides)
    return run_slot_contention(traces, protocol_factory("softrate"),
                               **kwargs)


class TestValidation:
    def test_partial_carrier_sense_rejected(self, traces):
        with pytest.raises(ValueError, match="carrier sense"):
            run(traces, carrier_sense_prob=0.5)

    def test_zero_clients_rejected(self, traces):
        with pytest.raises(ValueError, match="client"):
            run(traces, n_clients=0)

    def test_empty_traces_rejected(self):
        with pytest.raises(ValueError, match="trace"):
            run([])


class TestResults:
    def test_deterministic(self, traces):
        a = run(traces)
        b = run(traces)
        assert a.frame_logs == b.frame_logs
        assert a.per_client_frames == b.per_client_frames

    def test_seed_changes_outcome(self, traces):
        a = run(traces)
        b = run(traces, seed=4)
        assert frame_log_digest(a.frame_logs) != \
            frame_log_digest(b.frame_logs)

    def test_delivered_counts_match_logs(self, traces):
        result = run(traces)
        for sid, count in enumerate(result.per_client_frames,
                                    start=1):
            delivered = sum(1 for e in result.frame_logs[sid]
                            if e.delivered)
            assert count == delivered

    def test_single_station_never_collides(self, traces):
        result = run(traces, n_clients=1)
        entries = result.frame_logs[1]
        assert entries
        assert all(e.kind != "collided" for e in entries)

    def test_logs_cover_ap_and_all_clients(self, traces):
        result = run(traces, n_clients=2)
        assert set(result.frame_logs) == {0, 1, 2}
        assert result.frame_logs[0] == []     # the AP never transmits

    def test_frames_stay_inside_horizon(self, traces):
        duration = 0.03
        result = run(traces, duration=duration)
        cfg = MacConfig()
        for log in result.frame_logs.values():
            for e in log:
                assert e.time <= duration
        # ... and the reserved window (airtime + SIFS + feedback)
        # closed within the horizon too, or the fate would not have
        # concluded.
        assert all(e.time + cfg.sifs <= duration
                   for log in result.frame_logs.values() for e in log)

    def test_retry_limit_drops_frames(self):
        lossy = static_short_range_traces(
            1, duration=0.2, mean_snr_db=-40.0, seed=42,
            payload_bits=_PAYLOAD_BITS)
        sink = []
        result = run(lossy, n_clients=1, duration=0.05,
                     _engine_out=sink)
        (engine,) = sink
        assert int(engine.dropped.sum()) > 0
        assert result.per_client_frames == [0]
        # After every drop the retry counter and window reset.
        assert int(engine.retry[0]) < MacConfig().retry_limit

    def test_payload_bits_scale_throughput(self, traces):
        small = run(traces, payload_bits=368)
        large = run(traces, payload_bits=1472 * 8)
        assert large.payload_bits == 1472 * 8
        assert large.aggregate_mbps > small.aggregate_mbps


class TestRecording:
    def test_period_log_off_by_default(self, traces):
        sink = []
        run(traces, _engine_out=sink)
        (engine,) = sink
        assert engine.period_log == []

    def test_period_log_populates_when_asked(self, traces):
        sink = []
        run(traces, record_periods=True, _engine_out=sink)
        (engine,) = sink
        assert engine.period_log
        first = engine.period_log[0]
        assert first.anchor == 0.0
        assert first.winners

    def test_engine_state_is_consistent(self, traces):
        sink = []
        result = run(traces, _engine_out=sink)
        (engine,) = sink
        assert list(engine.delivered) == result.per_client_frames
        total_attempts = sum(len(log)
                             for log in result.frame_logs.values())
        # Attempts in flight at the horizon are counted but not
        # logged, so the counter can only exceed the log.
        assert int(engine.attempts.sum()) >= total_attempts
        assert np.all(engine.backoff >= 0)
        assert np.all((engine.cw >= MacConfig().cw_min)
                      & (engine.cw <= MacConfig().cw_max))
