"""Tests for drop-tail queues and point-to-point links."""

import pytest

from repro.sim.eventsim import Simulator
from repro.sim.queueing import DropTailQueue
from repro.sim.wired import PointToPointLink


class TestDropTail:
    def test_fifo_order(self):
        q = DropTailQueue(3)
        for x in "abc":
            assert q.push(x)
        assert [q.pop(), q.pop(), q.pop()] == list("abc")

    def test_drops_when_full(self):
        q = DropTailQueue(2)
        assert q.push(1) and q.push(2)
        assert not q.push(3)
        assert q.drops == 1
        assert len(q) == 2

    def test_peek_does_not_remove(self):
        q = DropTailQueue(2)
        q.push("x")
        assert q.peek() == "x"
        assert len(q) == 1

    def test_empty(self):
        q = DropTailQueue(1)
        assert q.empty
        assert q.pop() is None
        assert q.peek() is None

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)


class TestPointToPoint:
    def test_delivery_timing(self):
        sim = Simulator()
        arrivals = []
        link = PointToPointLink(sim, rate_bps=1e6, delay=10e-3)
        link.attach("a", lambda p: None)
        link.attach("b", lambda p: arrivals.append((sim.now, p)))
        link.send("a", "pkt", size_bits=1000)      # 1 ms serialisation
        sim.run_until(1.0)
        assert len(arrivals) == 1
        time, packet = arrivals[0]
        assert packet == "pkt"
        assert time == pytest.approx(0.001 + 0.010)

    def test_serialisation_queues_back_to_back(self):
        sim = Simulator()
        arrivals = []
        link = PointToPointLink(sim, rate_bps=1e6, delay=0.0)
        link.attach("a", lambda p: None)
        link.attach("b", lambda p: arrivals.append(sim.now))
        link.send("a", 1, size_bits=1000)
        link.send("a", 2, size_bits=1000)
        sim.run_until(1.0)
        assert arrivals == pytest.approx([0.001, 0.002])

    def test_full_duplex_independent(self):
        sim = Simulator()
        at_a, at_b = [], []
        link = PointToPointLink(sim, rate_bps=1e6, delay=0.0)
        link.attach("a", lambda p: at_a.append(sim.now))
        link.attach("b", lambda p: at_b.append(sim.now))
        link.send("a", "x", size_bits=1000)
        link.send("b", "y", size_bits=1000)
        sim.run_until(1.0)
        assert at_a == pytest.approx([0.001])
        assert at_b == pytest.approx([0.001])

    def test_unattached_endpoint_rejected(self):
        sim = Simulator()
        link = PointToPointLink(sim)
        link.attach("a", lambda p: None)
        with pytest.raises(RuntimeError):
            link.send("a", "pkt", 100)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PointToPointLink(sim, rate_bps=0.0)
        with pytest.raises(ValueError):
            PointToPointLink(sim, delay=-1.0)
