"""Integration tests for the Fig. 12 topology."""

import pytest

from repro.rateadapt import FixedRate, SoftRate
from repro.sim.topology import run_tcp_uplink
from repro.traces.synthetic import constant_trace


def _traces(n, best_rate=4):
    return [constant_trace(best_rate=best_rate, duration=2.0)
            for _ in range(n)]


class TestTcpUplink:
    def test_single_flow_transfers(self):
        result = run_tcp_uplink(
            _traces(1), _traces(1),
            lambda rates, trace: FixedRate(rates, 4),
            n_clients=1, duration=2.0)
        assert result.aggregate_mbps > 3.0
        assert result.per_flow_mbps[0] == result.aggregate_mbps

    def test_throughput_bounded_by_rate(self):
        # At the 6 Mbps nominal rate, goodput must land in the right
        # ballpark (the simulated airtime differs slightly from the
        # 48-subcarrier nominal rate, so allow some headroom).
        result = run_tcp_uplink(
            _traces(1), _traces(1),
            lambda rates, trace: FixedRate(rates, 0),
            n_clients=1, duration=2.0)
        assert 0.5 < result.aggregate_mbps < 8.0

    def test_multiple_clients_share_medium(self):
        one = run_tcp_uplink(
            _traces(1), _traces(1),
            lambda rates, trace: FixedRate(rates, 4),
            n_clients=1, duration=2.0)
        three = run_tcp_uplink(
            _traces(3), _traces(3),
            lambda rates, trace: FixedRate(rates, 4),
            n_clients=3, duration=2.0)
        # Aggregate stays in the same ballpark; per-flow drops.
        assert three.aggregate_mbps < one.aggregate_mbps * 1.5
        assert max(three.per_flow_mbps) < one.per_flow_mbps[0]
        # No starvation.
        assert min(three.per_flow_mbps) > 0.0

    def test_softrate_end_to_end(self):
        result = run_tcp_uplink(
            _traces(1), _traces(1),
            lambda rates, trace: SoftRate(rates),
            n_clients=1, duration=2.0)
        assert result.aggregate_mbps > 3.0
        log = result.frame_logs[1]
        # SoftRate must settle on the channel's best rate (4).
        settled = [e.rate_index for e in log[len(log) // 2:]]
        assert sum(r == 4 for r in settled) / len(settled) > 0.7

    def test_frame_logs_cover_all_stations(self):
        result = run_tcp_uplink(
            _traces(2), _traces(2),
            lambda rates, trace: FixedRate(rates, 3),
            n_clients=2, duration=1.0)
        assert set(result.frame_logs) == {0, 1, 2}
        assert len(result.frame_logs[1]) > 0
        assert len(result.frame_logs[0]) > 0     # AP sends TCP ACKs

    def test_validation(self):
        with pytest.raises(ValueError):
            run_tcp_uplink([], [], lambda r, t: FixedRate(r, 0),
                           n_clients=1)


class TestRecycledTraces:
    def test_small_pool_serves_many_clients(self):
        result = run_tcp_uplink(
            _traces(2), _traces(2),
            lambda rates, trace: FixedRate(rates, 4),
            n_clients=5, duration=1.0, recycle_traces=True)
        assert len(result.per_flow_mbps) == 5
        assert result.aggregate_mbps > 0.0

    def test_recycling_assigns_traces_round_robin(self):
        up = _traces(2)
        from repro.sim.topology import AccessPointNetwork, AP_ID
        network = AccessPointNetwork(
            n_clients=5, uplink_traces=up, downlink_traces=_traces(2),
            adapter_factory=lambda rates, trace: FixedRate(rates, 4),
            recycle_traces=True)
        assert network.traces[(1, AP_ID)] is up[0]
        assert network.traces[(2, AP_ID)] is up[1]
        assert network.traces[(3, AP_ID)] is up[0]

    def test_without_flag_requires_full_pool(self):
        with pytest.raises(ValueError, match="recycle_traces"):
            run_tcp_uplink(
                _traces(2), _traces(2),
                lambda rates, trace: FixedRate(rates, 4),
                n_clients=5, duration=0.5)

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError, match="at least one trace"):
            run_tcp_uplink(
                [], [], lambda rates, trace: FixedRate(rates, 4),
                n_clients=1, duration=0.5, recycle_traces=True)


class TestMacContention:
    def _run(self, **kwargs):
        from repro.sim.topology import run_mac_contention
        defaults = dict(n_clients=2, duration=0.1, payload_bits=368,
                        seed=3)
        defaults.update(kwargs)
        return run_mac_contention(
            _traces(2, best_rate=3),
            lambda rates, trace: FixedRate(rates, 3), **defaults)

    def test_saturated_clients_deliver_frames(self):
        result = self._run()
        assert len(result.per_client_frames) == 2
        assert all(n > 5 for n in result.per_client_frames)
        assert result.aggregate_mbps > 0.5
        assert sum(len(log) for log in result.frame_logs.values()) \
            >= sum(result.per_client_frames)

    def test_deterministic_across_calls(self):
        from repro.analysis.metrics import frame_log_digest
        a, b = self._run(), self._run()
        assert a.per_client_frames == b.per_client_frames
        assert frame_log_digest(a.frame_logs) == \
            frame_log_digest(b.frame_logs)

    def test_seed_changes_outcome(self):
        from repro.analysis.metrics import frame_log_digest
        a, b = self._run(seed=3), self._run(seed=4)
        assert frame_log_digest(a.frame_logs) != \
            frame_log_digest(b.frame_logs)

    def test_trace_pool_recycled(self):
        result = self._run(n_clients=4)
        assert len(result.per_client_frames) == 4

    def test_backend_accepted(self):
        result = self._run(phy_backend="surrogate", duration=0.05)
        assert len(result.per_client_frames) == 2
