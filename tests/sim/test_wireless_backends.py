"""Frame-delivery paths of the wireless channel under PHY backends.

The collision-geometry tests in ``test_wireless.py`` exercise the
default (precomputed trace) path; these tests pin the behaviours that
the pluggable backends must preserve — loss, capture, silent losses,
and SoftPHY hint propagation into feedback — when the clean-channel
observation is recomputed per transmission.
"""

import numpy as np
import pytest

from repro.phy.backend import FullPhyBackend, SurrogatePhyBackend
from repro.phy.calibration import default_table
from repro.sim.wireless import MacFrame, Transmission, WirelessChannel
from repro.traces.synthetic import constant_trace

#: Small payload so the full backend stays fast in unit tests.
_PAYLOAD_BITS = 368


def _frame(src=1, dest=0, seq=0):
    return MacFrame(src=src, dest=dest, seq=seq, payload=None,
                    payload_bits=_PAYLOAD_BITS)


def _tx(frame, start, duration, rate=3, preamble=16e-6, postamble=8e-6):
    return Transmission(frame=frame, rate_index=rate, start=start,
                        end=start + duration,
                        preamble_end=start + preamble,
                        postamble_start=start + duration - postamble)


def _trace(true_snr_db=25.0):
    trace = constant_trace(best_rate=5, duration=1.0)
    trace.true_snr_db = np.full(trace.n_slots, float(true_snr_db))
    return trace


def _channel(backend, true_snr_db=25.0, seed=0, detect_prob=1.0):
    trace = _trace(true_snr_db)
    traces = {(1, 0): trace, (2, 0): trace, (0, 1): trace,
              (2, 3): trace}
    return WirelessChannel(traces, np.random.default_rng(seed),
                           detect_prob=detect_prob,
                           phy_backend=backend)


def _backends():
    return [("surrogate", SurrogatePhyBackend(default_table())),
            ("full", FullPhyBackend())]


@pytest.fixture(params=["surrogate", "full"])
def backend(request):
    return dict(_backends())[request.param]


class TestCleanDelivery:
    def test_strong_channel_delivers_with_feedback(self, backend):
        channel = _channel(backend)
        tx = _tx(_frame(), 0.0, 1e-3)
        channel.begin_transmission(tx)
        fate = channel.conclude_transmission(tx)
        assert fate.kind == "clean"
        assert fate.delivered
        assert fate.feedback is not None and fate.feedback.frame_ok
        assert fate.feedback.seq == tx.frame.seq

    def test_hints_propagate_into_feedback(self, backend):
        """feedback.ber is the backend's SoftPHY BER estimate: tiny on
        a clean channel, large on a failing one."""
        channel = _channel(backend, true_snr_db=25.0)
        tx = _tx(_frame(), 0.0, 1e-3)
        channel.begin_transmission(tx)
        clean = channel.conclude_transmission(tx)
        assert clean.feedback.ber < 1e-6

        lossy = _channel(backend, true_snr_db=3.0)
        tx2 = _tx(_frame(), 0.0, 1e-3, rate=5)
        lossy.begin_transmission(tx2)
        fate = lossy.conclude_transmission(tx2)
        assert fate.kind == "clean" and not fate.delivered
        assert fate.feedback is not None       # header still decoded
        assert not fate.feedback.frame_ok
        assert fate.feedback.ber > 1e-3

    def test_snr_estimate_propagates(self, backend):
        channel = _channel(backend, true_snr_db=18.0)
        tx = _tx(_frame(), 0.0, 1e-3)
        channel.begin_transmission(tx)
        fate = channel.conclude_transmission(tx)
        assert fate.feedback.snr_db == pytest.approx(18.0, abs=4.0)


class TestLossPaths:
    def test_weak_channel_loses_frame(self, backend):
        channel = _channel(backend, true_snr_db=3.0)
        tx = _tx(_frame(), 0.0, 1e-3, rate=5)
        channel.begin_transmission(tx)
        fate = channel.conclude_transmission(tx)
        assert fate.kind == "clean"
        assert not fate.delivered

    def test_undetectable_channel_is_silent(self, backend):
        channel = _channel(backend, true_snr_db=-8.0)
        tx = _tx(_frame(), 0.0, 1e-3)
        channel.begin_transmission(tx)
        fate = channel.conclude_transmission(tx)
        assert fate.kind == "silent"
        assert fate.feedback is None
        assert fate.is_silent


class TestCaptureAndCollisions:
    def test_locked_frame_collides_follower_gets_postamble(self,
                                                           backend):
        channel = _channel(backend)
        first = _tx(_frame(src=1), 0.0, 1e-3)
        second = _tx(_frame(src=2), 0.4e-3, 1e-3)
        channel.begin_transmission(first)
        channel.begin_transmission(second)
        fate1 = channel.conclude_transmission(first)
        fate2 = channel.conclude_transmission(second)
        assert fate1.kind == "collided" and not fate1.delivered
        assert fate1.feedback is not None
        # Detector at prob 1.0: interference flagged, BER is the
        # backend's clean-portion estimate.
        assert fate1.interference_detected
        assert fate1.feedback.ber < 1e-3
        assert fate2.kind == "postamble"
        assert fate2.feedback.postamble_only

    def test_contained_frame_is_silent(self, backend):
        channel = _channel(backend)
        big = _tx(_frame(src=1), 0.0, 2e-3)
        small = _tx(_frame(src=2), 0.5e-3, 0.5e-3)
        channel.begin_transmission(big)
        channel.begin_transmission(small)
        assert channel.conclude_transmission(small).kind == "silent"

    def test_undetected_collision_reports_noise_ber(self, backend):
        channel = _channel(backend, detect_prob=0.0)
        first = _tx(_frame(src=1), 0.0, 1e-3)
        second = _tx(_frame(src=2), 0.4e-3, 1e-3)
        channel.begin_transmission(first)
        channel.begin_transmission(second)
        fate = channel.conclude_transmission(first)
        assert fate.kind == "collided"
        assert not fate.interference_detected
        assert fate.feedback.ber > 0.01


class TestBackendSelection:
    def test_channel_resolves_backend_names(self):
        channel = _channel("surrogate")
        assert isinstance(channel.phy_backend, SurrogatePhyBackend)

    def test_unknown_backend_name_rejected(self):
        with pytest.raises(ValueError, match="full"):
            _channel("warp-drive")

    def test_default_still_uses_trace_columns(self):
        channel = _channel(None)
        assert channel.phy_backend is None
        tx = _tx(_frame(), 0.0, 1e-3, rate=5)
        channel.begin_transmission(tx)
        # best_rate=5 trace: rate 5 delivers by construction.
        assert channel.conclude_transmission(tx).delivered


class TestRateTableThreading:
    """Backends must be resolved with the simulation's rate table."""

    def test_observe_rejects_rate_count_mismatch(self):
        # 8-rate trace vs the backend's default 6-rate table: loud
        # error, not an IndexError (or silently wrong rates).
        from repro.phy.rates import RATE_TABLE

        trace = constant_trace(best_rate=5, duration=0.1,
                               rates=RATE_TABLE)
        backend = SurrogatePhyBackend(default_table())
        with pytest.raises(ValueError, match="rate table"):
            backend.observe(trace, 0.0, 3, _PAYLOAD_BITS,
                            np.random.default_rng(0))

    def test_topology_threads_rates_into_full_backend(self):
        from repro.phy.rates import RATE_TABLE
        from repro.sim.topology import AccessPointNetwork
        from repro.rateadapt.fixed import FixedRate

        trace = constant_trace(best_rate=7, duration=0.5,
                               rates=RATE_TABLE)
        trace.true_snr_db = np.full(trace.n_slots, 25.0)
        network = AccessPointNetwork(
            n_clients=1, uplink_traces=[trace],
            downlink_traces=[trace],
            adapter_factory=lambda rates, tr: FixedRate(
                rates, rate_index=7),
            rates=RATE_TABLE, phy_backend="full")
        # The backend's table is the network's 8-rate table, so the
        # QAM64 rate index resolves instead of raising IndexError.
        assert len(network.channel.phy_backend.rates) == 8
        obs = network.channel.phy_backend.observe(
            trace, 0.0, 7, 368, np.random.default_rng(0))
        assert obs.detected

    def test_topology_surrogate_with_custom_rates_fails_loudly(self):
        from repro.phy.rates import RATE_TABLE
        from repro.sim.topology import AccessPointNetwork
        from repro.rateadapt.fixed import FixedRate

        trace = constant_trace(best_rate=7, duration=0.5,
                               rates=RATE_TABLE)
        with pytest.raises(ValueError, match="6 rates"):
            AccessPointNetwork(
                n_clients=1, uplink_traces=[trace],
                downlink_traces=[trace],
                adapter_factory=lambda rates, tr: FixedRate(
                    rates, rate_index=7),
                rates=RATE_TABLE, phy_backend="surrogate")


class TestLazyObservation:
    def test_deaf_receiver_skips_backend_decode(self):
        """A frame whose receiver was transmitting must not pay for a
        (potentially full-PHY) channel observation."""

        class CountingBackend(SurrogatePhyBackend):
            calls = 0

            def observe(self, *args, **kwargs):
                CountingBackend.calls += 1
                return super().observe(*args, **kwargs)

        channel = _channel(CountingBackend(default_table()))
        from_zero = _tx(_frame(src=0, dest=1), 0.0, 2e-3)
        to_zero = _tx(_frame(src=1, dest=0), 0.5e-3, 0.5e-3)
        channel.begin_transmission(from_zero)
        channel.begin_transmission(to_zero)
        fate = channel.conclude_transmission(to_zero)
        assert fate.kind == "silent"
        assert CountingBackend.calls == 0
