"""Tests for the CSMA/CA MAC station."""

import numpy as np
import pytest

from repro.phy.rates import RATE_TABLE
from repro.rateadapt.fixed import FixedRate
from repro.sim.eventsim import Simulator
from repro.sim.mac import MacConfig, Station
from repro.sim.topology import make_airtime_fn
from repro.sim.wireless import WirelessChannel
from repro.traces.synthetic import constant_trace

RATES = RATE_TABLE.prototype_subset()


def _network(best_rate=5, cs=None, seed=0, adapter_rate=3,
             config=None):
    sim = Simulator()
    trace = constant_trace(best_rate=best_rate, duration=1.0)
    traces = {(1, 0): trace, (2, 0): trace}
    channel = WirelessChannel(traces, np.random.default_rng(seed),
                              carrier_sense_prob=cs)
    airtime = make_airtime_fn(RATES)
    config = config or MacConfig()
    delivered = []
    ap = Station(sim, channel, 0, np.random.default_rng(seed + 1),
                 adapter_factory=lambda peer: FixedRate(RATES,
                                                        adapter_rate),
                 airtime_fn=airtime, config=config,
                 on_deliver=lambda f: delivered.append(f))
    senders = {}
    for sid in (1, 2):
        senders[sid] = Station(
            sim, channel, sid, np.random.default_rng(seed + 10 + sid),
            adapter_factory=lambda peer: FixedRate(RATES, adapter_rate),
            airtime_fn=airtime, config=config)
    return sim, channel, ap, senders, delivered


class TestDelivery:
    def test_queued_frame_delivered(self):
        sim, _ch, _ap, senders, delivered = _network()
        assert senders[1].send(0, "payload", 11200)
        sim.run_until(0.1)
        assert len(delivered) == 1
        assert delivered[0].payload == "payload"
        assert senders[1].delivered_frames == 1

    def test_frames_delivered_in_order(self):
        sim, _ch, _ap, senders, delivered = _network()
        for i in range(5):
            senders[1].send(0, i, 11200)
        sim.run_until(0.1)
        assert [f.payload for f in delivered] == [0, 1, 2, 3, 4]

    def test_queue_overflow_rejected(self):
        config = MacConfig(queue_capacity=2)
        sim, _ch, _ap, senders, _d = _network(config=config)
        results = [senders[1].send(0, i, 11200) for i in range(4)]
        # First frame may already be in service; at least one must be
        # rejected once the queue saturates.
        assert not all(results)

    def test_adapter_receives_feedback(self):
        sim, _ch, _ap, senders, _d = _network()
        sender = senders[1]
        feedbacks = []
        adapter = sender.adapter(0)
        original = adapter.on_feedback
        adapter.on_feedback = lambda *a, **k: feedbacks.append(a)
        sender.send(0, "x", 11200)
        sim.run_until(0.1)
        assert len(feedbacks) == 1


class TestRetries:
    def test_bad_rate_retries_then_drops(self):
        # Channel supports up to rate 2; adapter insists on rate 5.
        config = MacConfig(retry_limit=3)
        sim, _ch, _ap, senders, delivered = _network(
            best_rate=2, adapter_rate=5, config=config)
        senders[1].send(0, "x", 11200)
        sim.run_until(0.5)
        assert delivered == []
        assert senders[1].dropped_frames == 1
        # Exactly retry_limit transmissions in total, then the drop.
        assert len(senders[1].frame_log) == 3

    def test_attempt_count_matches_retry_limit(self):
        # Pin the retry accounting: a frame that never delivers is
        # transmitted exactly ``retry_limit`` times — no off-by-one
        # extra attempt — and the logged retry indices are 0..limit-1.
        for limit in (1, 2, 5):
            config = MacConfig(retry_limit=limit)
            sim, _ch, _ap, senders, _d = _network(
                best_rate=2, adapter_rate=5, config=config)
            senders[1].send(0, "x", 11200)
            sim.run_until(0.5)
            log = senders[1].frame_log
            assert len(log) == limit
            assert [e.retry for e in log] == list(range(limit))
            assert senders[1].dropped_frames == 1

    def test_next_frame_sent_after_drop(self):
        config = MacConfig(retry_limit=2)
        sim, _ch, _ap, senders, delivered = _network(
            best_rate=2, adapter_rate=5, config=config)
        senders[1].send(0, "first", 11200)
        senders[1].send(0, "second", 11200)
        sim.run_until(0.5)
        assert senders[1].dropped_frames == 2
        assert len(senders[1].frame_log) == 4


class TestContention:
    def test_perfect_carrier_sense_avoids_collisions(self):
        sim, channel, _ap, senders, delivered = _network()
        for i in range(10):
            senders[1].send(0, ("s1", i), 11200)
            senders[2].send(0, ("s2", i), 11200)
        sim.run_until(1.0)
        # With perfect carrier sense the only collisions are exact
        # backoff ties on the shared slot grid — rare, and always
        # recovered by retransmission.
        assert channel.stats["collided"] <= 8
        assert len(delivered) >= 18

    def test_hidden_terminals_collide(self):
        sim, channel, _ap, senders, delivered = _network(
            cs=lambda a, b: 0.0 if {a, b} == {1, 2} else 1.0)
        for i in range(10):
            senders[1].send(0, ("s1", i), 11200)
            senders[2].send(0, ("s2", i), 11200)
        sim.run_until(1.0)
        collisions = channel.stats["collided"] + \
            channel.stats["silent"] + channel.stats["postamble"]
        assert collisions > 5

    def test_backoff_freezes_and_resumes(self):
        # 802.11 freeze-and-resume: the loser of the first contention
        # round must *resume* its frozen counter after the winner's
        # reservation ends — not redraw a fresh one.
        class ScriptedRng:
            def __init__(self, draws):
                self._draws = iter(draws)

            def integers(self, low, high):
                return next(self._draws)

        sim, channel, _ap, senders, delivered = _network()
        senders[1].rng = ScriptedRng([2])    # wins at boundary 2
        senders[2].rng = ScriptedRng([5])    # freezes with 3 left
        senders[1].send(0, "a", 11200)
        senders[2].send(0, "b", 11200)
        sim.run_until(0.1)
        assert len(delivered) == 2
        cfg = senders[1].config
        first, second = channel._history
        assert first.frame.src == 1
        assert first.reserved_start == pytest.approx(
            cfg.difs + 2 * cfg.slot_time)
        # The loser counted 2 of its 5 slots before freezing, so it
        # resumes after the winner's reservation with exactly 3 left.
        assert second.frame.src == 2
        assert second.reserved_start == pytest.approx(
            first.reserved_until + cfg.difs + 3 * cfg.slot_time)

    def test_medium_busy_defers(self):
        # With carrier sense, transmissions must not overlap in time.
        sim, channel, _ap, senders, _d = _network()
        senders[1].send(0, "a", 11200)
        senders[2].send(0, "b", 11200)
        sim.run_until(0.1)
        history = channel._history
        spans = sorted((t.start, t.end) for t in history)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert s2 >= e1 - 1e-12
