"""Tests for TTL-bounded forwarding and duplicate suppression.

Uses real :class:`MeshNode` stacks over a real channel where the
deterministic cases are easy to stage (close-range clean links), plus
direct ``_receive`` calls for the drop paths.
"""

import numpy as np
import pytest

from repro.experiments.common import softrate_factory
from repro.sim.eventsim import Simulator
from repro.sim.mac import MacFrame
from repro.sim.mesh import MeshChannel, MeshGeometry, MeshPacket
from repro.sim.mesh.forwarding import MeshNode
from repro.sim.topology import make_airtime_fn


def build_chain(n_nodes=3, spacing=5.0, seed=1):
    """A short clean chain 0 -> 1 -> ... -> n-1 with linear routing."""
    sim = Simulator()
    geo = MeshGeometry({i: (i * spacing, 0.0)
                        for i in range(n_nodes)})
    channel = MeshChannel(geo, np.random.default_rng(seed))

    def route(node, dest):
        return node - 1 if node > dest else node + 1

    airtime = make_airtime_fn(channel.rates)
    nodes = {
        i: MeshNode(sim, channel, i, np.random.default_rng(seed + i),
                    adapter_factory=lambda peer:
                    softrate_factory(channel.rates, None),
                    airtime_fn=airtime, route=route)
        for i in range(n_nodes)}
    return sim, nodes


class TestOriginate:
    def test_packets_reach_the_far_end(self):
        sim, nodes = build_chain()
        assert nodes[0].originate(2, 368, ttl=4)
        sim.run_until(0.05)
        assert len(nodes[2].delivered) == 1
        _, hops = nodes[2].delivered[0]
        assert hops == 2

    def test_seq_numbers_do_not_wrap(self):
        sim, nodes = build_chain(n_nodes=2)
        nodes[0]._origin_seq = 5000    # past the MAC's 4096 wrap
        assert nodes[0].originate(1, 368, ttl=1)
        sim.run_until(0.05)
        assert len(nodes[1].delivered) == 1

    def test_ttl_must_be_positive(self):
        _, nodes = build_chain(n_nodes=2)
        with pytest.raises(ValueError, match="ttl"):
            nodes[0].originate(1, 368, ttl=0)

    def test_full_queue_returns_false(self):
        _, nodes = build_chain(n_nodes=2)
        accepted = 0
        while nodes[0].originate(1, 368, ttl=1):
            accepted += 1
        # Queue capacity (50) bounds acceptance; counters agree.
        assert accepted == nodes[0].originated == 50


class TestTtl:
    def test_exhausted_ttl_dropped_not_forwarded(self):
        sim, nodes = build_chain(n_nodes=3)
        # TTL 1 permits exactly one MAC hop: node 1 receives with no
        # budget left and must drop rather than forward.
        assert nodes[0].originate(2, 368, ttl=1)
        sim.run_until(0.05)
        assert len(nodes[2].delivered) == 0
        assert nodes[1].ttl_drops == 1

    def test_delivered_hops_bounded_by_initial_ttl(self):
        sim, nodes = build_chain(n_nodes=4)
        for _ in range(5):
            nodes[0].originate(3, 368, ttl=8)
        sim.run_until(0.2)
        assert nodes[3].delivered
        assert all(hops <= 8 for _, hops in nodes[3].delivered)


class TestDuplicates:
    def _packet(self, seq=0, ttl=3):
        return MeshPacket(origin=0, final_dest=2, seq=seq, ttl=ttl,
                          initial_ttl=ttl)

    def _frame(self, packet):
        return MacFrame(src=0, dest=1, seq=0, payload=packet,
                        payload_bits=368)

    def test_second_copy_dropped_at_relay(self):
        _, nodes = build_chain()
        packet = self._packet()
        nodes[1]._receive(self._frame(packet))
        nodes[1]._receive(self._frame(packet))
        assert nodes[1].duplicate_drops == 1

    def test_destination_delivers_once(self):
        sim, nodes = build_chain(n_nodes=2)
        packet = MeshPacket(origin=0, final_dest=1, seq=9, ttl=2,
                            initial_ttl=2)
        frame = MacFrame(src=0, dest=1, seq=0, payload=packet,
                         payload_bits=368)
        nodes[1]._receive(frame)
        nodes[1]._receive(frame)
        assert len(nodes[1].delivered) == 1
        assert nodes[1].duplicate_drops == 1

    def test_loop_back_to_origin_killed(self):
        sim, nodes = build_chain()
        assert nodes[0].originate(2, 368, ttl=4)
        looped = MeshPacket(origin=0, final_dest=2, seq=0, ttl=3,
                            initial_ttl=4, hops=1)
        nodes[0]._receive(MacFrame(src=1, dest=0, seq=0,
                                   payload=looped, payload_bits=368))
        assert nodes[0].duplicate_drops == 1

    def test_non_mesh_payload_ignored(self):
        _, nodes = build_chain()
        nodes[1]._receive(MacFrame(src=0, dest=1, seq=0,
                                   payload="tcp-segment",
                                   payload_bits=368))
        assert nodes[1].delivered == []
        assert nodes[1].duplicate_drops == 0
