"""Tests for mesh geometry: positions, paths, distances."""

import math

import pytest

from repro.sim.mesh import LinearPath, MeshGeometry


class TestLinearPath:
    def test_static_when_velocity_zero(self):
        path = LinearPath(start=(3.0, 4.0), velocity=(0.0, 0.0))
        assert path(0.0) == (3.0, 4.0)
        assert path(100.0) == (3.0, 4.0)

    def test_constant_velocity(self):
        path = LinearPath(start=(0.0, 4.0), velocity=(30.0, 0.0))
        assert path(0.5) == (15.0, 4.0)

    def test_travel_clamp(self):
        path = LinearPath(start=(0.0, 0.0), velocity=(10.0, 0.0),
                          max_travel_m=18.0)
        assert path(1.0) == (10.0, 0.0)
        assert path(1.8) == pytest.approx((18.0, 0.0))
        # Past the cap the node stays put.
        assert path(100.0) == pytest.approx((18.0, 0.0))

    def test_diagonal_clamp_uses_speed(self):
        path = LinearPath(start=(0.0, 0.0), velocity=(3.0, 4.0),
                          max_travel_m=10.0)
        x, y = path(100.0)
        assert math.hypot(x, y) == pytest.approx(10.0)


class TestMeshGeometry:
    def test_fixed_and_mobile_nodes(self):
        geo = MeshGeometry({0: LinearPath((0.0, 4.0), (2.0, 0.0)),
                            1: (0.0, 0.0), 2: (9.0, 0.0)})
        assert geo.node_ids() == [0, 1, 2]
        assert geo.position(1, 5.0) == (0.0, 0.0)
        assert geo.position(0, 1.0) == (2.0, 4.0)

    def test_distance_evolves_with_time(self):
        geo = MeshGeometry({0: LinearPath((0.0, 0.0), (1.0, 0.0)),
                            1: (10.0, 0.0)})
        assert geo.distance(0, 1, 0.0) == pytest.approx(10.0)
        assert geo.distance(0, 1, 4.0) == pytest.approx(6.0)

    def test_distance_symmetric(self):
        geo = MeshGeometry({0: (0.0, 3.0), 1: (4.0, 0.0)})
        assert geo.distance(0, 1, 0.0) == geo.distance(1, 0, 0.0) == 5.0

    def test_unknown_node_raises(self):
        geo = MeshGeometry({0: (0.0, 0.0)})
        with pytest.raises(KeyError, match="unknown node"):
            geo.position(7, 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MeshGeometry({})
