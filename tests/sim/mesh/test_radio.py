"""Tests for the geometry-driven mesh channel.

Covers the link model (path loss + reciprocal shadowing/fading),
deterministic carrier sense (hidden terminals from geometry), the
per-node receive buffers, SINR capture, and the clean/collided/
postamble/silent fate taxonomy.
"""

import numpy as np
import pytest

from repro.channel.pathloss import LogDistancePathLoss
from repro.sim.mesh import MeshChannel, MeshGeometry
from repro.sim.wireless import MacFrame, Transmission

#: Chain layout: 0 and 1 adjacent (9 m), 2 two hops out (18 m, below
#: the 3 dB carrier-sense threshold from 0), 3 far out of range.
_NODES = {0: (0.0, 0.0), 1: (9.0, 0.0), 2: (18.0, 0.0),
          3: (60.0, 0.0)}


def make_channel(seed=1, **kwargs):
    return MeshChannel(MeshGeometry(_NODES),
                       np.random.default_rng(seed), **kwargs)


def make_tx(src, dest, start=0.0, airtime=1e-3, seq=0):
    frame = MacFrame(src=src, dest=dest, seq=seq, payload=None,
                     payload_bits=368)
    return Transmission(frame=frame, rate_index=2, start=start,
                        end=start + airtime,
                        preamble_end=start + 16e-6,
                        postamble_start=start + airtime - 8e-6)


class TestLinkModel:
    def test_snr_decreases_with_distance(self):
        ch = make_channel()
        snrs = [ch.mean_snr_db(0, peer, 0.0) for peer in (1, 2, 3)]
        assert snrs == sorted(snrs, reverse=True)

    def test_no_shadowing_by_default(self):
        assert make_channel().shadowing_db(0, 1) == 0.0

    def test_shadowing_reciprocal_and_deterministic(self):
        pathloss = LogDistancePathLoss(shadowing_sigma_db=6.0)
        a = make_channel(pathloss=pathloss, link_seed=4)
        b = make_channel(pathloss=pathloss, link_seed=4)
        assert a.shadowing_db(0, 1) == a.shadowing_db(1, 0)
        assert a.shadowing_db(0, 1) == b.shadowing_db(1, 0)
        assert a.shadowing_db(0, 1) != a.shadowing_db(0, 2)
        # A different link seed draws a different realisation.
        c = make_channel(pathloss=pathloss, link_seed=5)
        assert a.shadowing_db(0, 1) != c.shadowing_db(0, 1)

    def test_trajectory_fading_is_order_independent(self):
        a = make_channel(link_seed=9)
        b = make_channel(link_seed=9)
        # Warm b's 0-2 link first: realisations must not depend on
        # the order links are touched in.
        b.snr_trajectory(0, 2, 0.0, 1e-3)
        t1 = a.snr_trajectory(0, 1, 0.0, 1e-3)
        t2 = b.snr_trajectory(0, 1, 0.0, 1e-3)
        assert np.array_equal(t1, t2)
        assert t1.shape == (8,)


class TestCarrierSense:
    def test_neighbor_senses_busy_medium(self):
        ch = make_channel()
        ch.begin_transmission(make_tx(0, 1))
        assert ch.medium_busy_until(1, 1e-4) == pytest.approx(1e-3)

    def test_two_hop_node_is_hidden(self):
        """18 m ~ 2 dB mean SNR: below the 3 dB sense threshold, so
        the hidden terminal emerges from distance, not a knob."""
        ch = make_channel()
        ch.begin_transmission(make_tx(0, 1))
        assert ch.medium_busy_until(2, 1e-4) is None

    def test_sense_decision_is_sticky(self):
        ch = make_channel()
        tx = make_tx(0, 1)
        ch.begin_transmission(tx)
        ch.medium_busy_until(1, 1e-4)
        assert tx.sensed_by[1] is True
        # Flipping the cache flips the answer: the cached sample is
        # authoritative for the transmission's lifetime.
        tx.sensed_by[1] = False
        assert ch.medium_busy_until(1, 2e-4) is None


class TestReceiveBuffers:
    def test_audible_nodes_buffered(self):
        ch = make_channel()
        ch.begin_transmission(make_tx(0, 1))
        assert len(ch._rx_buffers.get(1, [])) == 1
        assert len(ch._rx_buffers.get(2, [])) == 1
        # 60 m is below the audibility floor entirely.
        assert len(ch._rx_buffers.get(3, [])) == 0


class TestFates:
    def test_clean_delivery_at_close_range(self):
        ch = make_channel()
        tx = make_tx(0, 1)
        ch.begin_transmission(tx)
        fate = ch.conclude_transmission(tx)
        assert fate.kind == "clean"
        assert fate.feedback is not None
        assert ch.stats["clean"] == 1

    def test_out_of_range_is_silent(self):
        ch = make_channel()
        tx = make_tx(0, 3)
        ch.begin_transmission(tx)
        fate = ch.conclude_transmission(tx)
        assert fate.kind == "silent"
        assert fate.feedback is None

    def test_deaf_receiver_is_silent(self):
        ch = make_channel()
        tx = make_tx(0, 1)
        other = make_tx(1, 0, start=2e-4)
        ch.begin_transmission(tx)
        ch.begin_transmission(other)
        assert ch.conclude_transmission(tx).kind == "silent"

    def test_hidden_terminal_collision(self):
        """0 and 2 are mutually hidden; their overlapping frames at 1
        collide (receiver locked onto the earlier one)."""
        ch = make_channel(capture_margin_db=100.0)
        tx = make_tx(0, 1)
        hidden = make_tx(2, 1, start=2e-4)
        ch.begin_transmission(tx)
        ch.begin_transmission(hidden)
        fate = ch.conclude_transmission(tx)
        assert fate.kind == "collided"
        assert fate.feedback is not None
        assert not fate.delivered

    def test_late_frame_with_covered_postamble_is_silent(self):
        ch = make_channel(capture_margin_db=100.0)
        early = make_tx(0, 1)
        late = make_tx(2, 1, start=2e-4, airtime=4e-4)
        ch.begin_transmission(early)
        ch.begin_transmission(late)
        # ``late`` starts after ``early`` locked the receiver and ends
        # inside it, so its postamble is covered too: total loss.
        assert ch.conclude_transmission(late).kind == "silent"

    def test_late_frame_with_clear_postamble(self):
        ch = make_channel(capture_margin_db=100.0)
        early = make_tx(0, 1, airtime=3e-4)
        late = make_tx(2, 1, start=2e-4, airtime=1e-3)
        ch.begin_transmission(early)
        ch.begin_transmission(late)
        fate = ch.conclude_transmission(late)
        assert fate.kind == "postamble"
        assert fate.feedback.postamble_only

    def test_capture_survives_weak_interferer(self):
        """5 m signal vs 18 m interferer is ~16.7 dB of SINR — above
        the default 10 dB capture margin, so the strong frame rides
        through the overlap as clean."""
        geo = MeshGeometry({0: (5.0, 0.0), 1: (0.0, 0.0),
                            2: (18.0, 0.0)})
        ch = MeshChannel(geo, np.random.default_rng(1))
        tx = make_tx(0, 1)
        weak = make_tx(2, 1, start=2e-4)
        ch.begin_transmission(tx)
        ch.begin_transmission(weak)
        fate = ch.conclude_transmission(tx)
        assert fate.kind == "clean"
        assert ch.stats["captured"] == 1

    def test_rts_protected_ignores_overlap(self):
        ch = make_channel(capture_margin_db=100.0)
        tx = make_tx(0, 1)
        tx.rts_protected = True
        hidden = make_tx(2, 1, start=2e-4)
        ch.begin_transmission(tx)
        ch.begin_transmission(hidden)
        assert ch.conclude_transmission(tx).kind == "clean"


class TestValidation:
    def test_detect_prob_bounds(self):
        with pytest.raises(ValueError):
            make_channel(detect_prob=1.5)

    def test_doppler_positive(self):
        with pytest.raises(ValueError):
            make_channel(doppler_hz=0.0)
