"""Tests for the relay-chain-plus-roaming-client scenario."""

import numpy as np
import pytest

from repro.experiments.common import protocol_factory
from repro.analysis.metrics import frame_log_digest
from repro.sim.mesh import CLIENT_ID, MeshNetwork, run_mesh_scenario


def softrate():
    return protocol_factory("softrate")


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError, match="two relays"):
            MeshNetwork(softrate(), n_relays=1)
        with pytest.raises(ValueError, match="spacing"):
            MeshNetwork(softrate(), spacing_m=0.0)
        with pytest.raises(ValueError, match="scan"):
            MeshNetwork(softrate(), scan_interval=0.0)

    def test_initial_association_is_nearest_ap(self):
        net = MeshNetwork(softrate(), n_relays=3)
        assert net.current_ap == 1

    def test_default_ttl_covers_the_chain(self):
        assert MeshNetwork(softrate(), n_relays=4).ttl == 6


class TestRouting:
    def test_client_routes_through_current_ap(self):
        net = MeshNetwork(softrate(), n_relays=3)
        assert net._next_hop(CLIENT_ID, 3) == 1
        net.current_ap = 2
        assert net._next_hop(CLIENT_ID, 3) == 2

    def test_relays_step_toward_destination(self):
        net = MeshNetwork(softrate(), n_relays=4)
        assert net._next_hop(1, 4) == 2
        assert net._next_hop(3, 4) == 4
        assert net._next_hop(4, 1) == 3

    def test_route_to_client_goes_via_its_ap(self):
        net = MeshNetwork(softrate(), n_relays=3)
        net.current_ap = 2
        assert net._next_hop(1, CLIENT_ID) == 2
        assert net._next_hop(2, CLIENT_ID) == CLIENT_ID
        assert net._next_hop(3, CLIENT_ID) == 2


class TestRoaming:
    def test_static_client_never_hands_off(self):
        result = run_mesh_scenario(softrate(), duration=0.1, seed=2)
        assert result.handoff_times == []

    def test_vehicular_client_hands_off(self):
        """At 30 m/s over 9 m spacing the hysteresis boundary falls
        around t=0.2 s — inside a 0.25 s window."""
        result = run_mesh_scenario(softrate(), duration=0.25,
                                   n_relays=3, client_speed_mps=30.0,
                                   seed=2)
        assert len(result.handoff_times) >= 1
        assert all(0.0 < t < 0.25 for t in result.handoff_times)

    def test_traffic_survives_the_handoff(self):
        result = run_mesh_scenario(softrate(), duration=0.25,
                                   n_relays=3, client_speed_mps=30.0,
                                   seed=2)
        handoff = result.handoff_times[0]
        after = [t for t, _ in result.delivered if t > handoff]
        assert after, "no deliveries after the handoff"


class TestDeterminism:
    def test_same_seed_same_frame_logs(self):
        a = run_mesh_scenario(softrate(), duration=0.06, seed=11)
        b = run_mesh_scenario(softrate(), duration=0.06, seed=11)
        assert frame_log_digest(a.frame_logs) == \
            frame_log_digest(b.frame_logs)

    def test_different_seed_differs(self):
        a = run_mesh_scenario(softrate(), duration=0.06, seed=11)
        b = run_mesh_scenario(softrate(), duration=0.06, seed=12)
        assert frame_log_digest(a.frame_logs) != \
            frame_log_digest(b.frame_logs)


class TestResultMetrics:
    def test_counters_consistent(self):
        result = run_mesh_scenario(softrate(), duration=0.08, seed=3)
        assert result.originated >= len(result.delivered) > 0
        assert 0.0 < result.delivery_rate <= 1.0
        assert result.mean_hops == 2.0       # 2-relay chain, static
        assert result.goodput_mbps > 0.0
        assert set(result.frame_logs) == {0, 1, 2}

    def test_shadowing_changes_outcomes(self):
        plain = run_mesh_scenario(softrate(), duration=0.06, seed=7)
        shadowed = run_mesh_scenario(softrate(), duration=0.06,
                                     seed=7, shadowing_sigma_db=8.0)
        assert frame_log_digest(plain.frame_logs) != \
            frame_log_digest(shadowed.frame_logs)


class TestSoftRateThroughHandoff:
    def test_softrate_beats_loss_triggered_while_roaming(self):
        """The paper's core claim transplanted to roaming: SoftPHY
        BER feedback keeps the rate matched through the SNR swings of
        an AP approach/departure, where loss-triggered adaptation
        (SampleRate) backs off on collision- and fade-induced losses.
        Fixed seed; the margin is the acceptance criterion."""
        kwargs = dict(duration=0.25, n_relays=3,
                      client_speed_mps=30.0, shadowing_sigma_db=4.0,
                      seed=6)
        soft = run_mesh_scenario(protocol_factory("softrate"),
                                 **kwargs)
        sample = run_mesh_scenario(protocol_factory("samplerate"),
                                   **kwargs)
        assert soft.handoff_times and sample.handoff_times
        assert len(soft.delivered) > len(sample.delivered)
