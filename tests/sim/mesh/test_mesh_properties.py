"""Property-based tests for mesh forwarding invariants.

Hypothesis drives random chain sizes, TTLs, speeds, shadowing spreads
and seeds through full mesh simulations and asserts the three
invariants the subsystem is built on:

* **TTL bound** — no packet is ever delivered after more MAC hops
  than its initial TTL allowed.
* **No duplicate delivery** — the sink delivers each ``(origin,
  seq)`` at most once, whatever collisions and retries happen below.
* **Execution-order independence** — the frame-log digest is a pure
  function of the scenario parameters (same scenario, fresh process
  state, identical digest), which is the property the campaign layer
  relies on for serial == pooled == sharded equality.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.metrics import frame_log_digest
from repro.experiments.common import protocol_factory
from repro.sim.mesh import run_mesh_scenario

#: Keep each drawn scenario small: full MAC simulation per example.
_SCENARIO = dict(
    n_relays=st.integers(min_value=2, max_value=4),
    ttl=st.integers(min_value=1, max_value=8),
    speed=st.sampled_from([0.0, 15.0, 30.0]),
    sigma=st.sampled_from([0.0, 6.0]),
    seed=st.integers(min_value=0, max_value=2**20),
)


def run(n_relays, ttl, speed, sigma, seed, duration=0.03):
    return run_mesh_scenario(
        protocol_factory("softrate"), duration=duration,
        n_relays=n_relays, ttl=ttl, client_speed_mps=speed,
        shadowing_sigma_db=sigma, seed=seed)


@settings(max_examples=15, deadline=None)
@given(**_SCENARIO)
def test_ttl_bound_always_respected(n_relays, ttl, speed, sigma, seed):
    result = run(n_relays, ttl, speed, sigma, seed)
    assert all(hops <= ttl for _, hops in result.delivered)
    # And the TTL accounting is conservative: without shadowing the
    # client associates with its nearest relay, so packets that need
    # more hops than the TTL allows never arrive at all.  (Shadowing
    # can make the *sink itself* the strongest AP, legitimately
    # delivering in a single hop whatever n_relays is.)
    if ttl < n_relays and sigma == 0.0 and speed == 0.0:
        assert result.delivered == []


@settings(max_examples=15, deadline=None)
@given(**_SCENARIO)
def test_no_duplicate_delivery(n_relays, ttl, speed, sigma, seed):
    result = run(n_relays, ttl, speed, sigma, seed)
    # Every sink delivery consumed one distinct originated packet.
    assert len(result.delivered) <= result.originated
    assert result.duplicate_drops == 0
    # Delivery times are strictly ordered events on one sink; equal
    # times would mean one frame delivered twice.
    times = [t for t, _ in result.delivered]
    assert len(times) == len(set(times))


@settings(max_examples=10, deadline=None)
@given(**_SCENARIO)
def test_rerun_digest_identical(n_relays, ttl, speed, sigma, seed):
    a = run(n_relays, ttl, speed, sigma, seed)
    b = run(n_relays, ttl, speed, sigma, seed)
    assert frame_log_digest(a.frame_logs) == \
        frame_log_digest(b.frame_logs)
