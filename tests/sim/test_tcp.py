"""Tests for TCP Reno over the simulator."""

import pytest

from repro.sim.eventsim import Simulator
from repro.sim.tcp import MSS_BYTES, Segment, TcpReceiver, TcpSender


class _Pipe:
    """Bidirectional lossy pipe wiring a sender and receiver."""

    def __init__(self, delay=10e-3, drop=None):
        self.sim = Simulator()
        self.drop = drop or (lambda seg: False)
        self.sender = TcpSender(self.sim, 0, self._to_receiver)
        self.receiver = TcpReceiver(self.sim, 0, self._to_sender)

    def _to_receiver(self, segment):
        if self.drop(segment):
            return
        self.sim.schedule(10e-3,
                          lambda: self.receiver.on_data(segment))

    def _to_sender(self, segment):
        self.sim.schedule(10e-3, lambda: self.sender.on_ack(segment))


class TestBasicTransfer:
    def test_lossless_transfer_progresses(self):
        pipe = _Pipe()
        pipe.sender.start()
        pipe.sim.run_until(2.0)
        assert pipe.receiver.next_expected > 100
        assert pipe.sender.retransmissions == 0
        assert pipe.sender.timeouts == 0

    def test_slow_start_doubles_window(self):
        pipe = _Pipe()
        pipe.sender.start()
        # After ~3 RTTs of slow start, cwnd should have grown well
        # beyond its initial value of 1.
        pipe.sim.run_until(0.07)
        assert pipe.sender.cwnd >= 4

    def test_delivered_bytes_accounting(self):
        pipe = _Pipe()
        pipe.sender.start()
        pipe.sim.run_until(1.0)
        assert pipe.receiver.delivered_bytes == \
            pipe.receiver.next_expected * MSS_BYTES


class TestLossRecovery:
    def test_single_loss_triggers_fast_retransmit(self):
        dropped = []

        def drop(segment):
            if segment.seq == 20 and 20 not in dropped:
                dropped.append(segment.seq)
                return True
            return False

        pipe = _Pipe(drop=drop)
        pipe.sender.start()
        pipe.sim.run_until(2.0)
        assert dropped == [20]
        assert pipe.sender.retransmissions >= 1
        assert pipe.sender.timeouts == 0         # recovered via dupacks
        assert pipe.receiver.next_expected > 50

    def test_loss_halves_cwnd(self):
        state = {"cwnd_before": None}

        def drop(segment):
            if segment.seq == 30 and state["cwnd_before"] is None:
                state["cwnd_before"] = pipe.sender.cwnd
                return True
            return False

        pipe = _Pipe(drop=drop)
        pipe.sender.start()
        pipe.sim.run_until(2.0)
        assert state["cwnd_before"] is not None
        assert pipe.sender.ssthresh <= state["cwnd_before"]

    def test_total_blackout_uses_rto(self):
        pipe = _Pipe(drop=lambda seg: True)
        pipe.sender.start()
        pipe.sim.run_until(8.0)
        assert pipe.sender.timeouts >= 2
        # Exponential backoff: retransmissions are spaced out, not
        # flooding.
        assert pipe.sender.segments_sent < 10

    def test_recovers_after_blackout_ends(self):
        state = {"until": 2.0}

        def drop(segment):
            return pipe.sim.now < state["until"]

        pipe = _Pipe(drop=drop)
        pipe.sender.start()
        pipe.sim.run_until(10.0)
        assert pipe.receiver.next_expected > 100


class TestReceiver:
    def test_out_of_order_buffering(self):
        sim = Simulator()
        acks = []
        receiver = TcpReceiver(sim, 0, lambda s: acks.append(s.ack))
        receiver.on_data(Segment(flow=0, seq=0))
        receiver.on_data(Segment(flow=0, seq=2))      # gap at 1
        receiver.on_data(Segment(flow=0, seq=1))      # fills the gap
        assert acks == [1, 1, 3]

    def test_foreign_flow_ignored(self):
        sim = Simulator()
        acks = []
        receiver = TcpReceiver(sim, 0, lambda s: acks.append(s.ack))
        receiver.on_data(Segment(flow=7, seq=0))
        assert acks == []

    def test_duplicate_data_reacked(self):
        sim = Simulator()
        acks = []
        receiver = TcpReceiver(sim, 0, lambda s: acks.append(s.ack))
        receiver.on_data(Segment(flow=0, seq=0))
        receiver.on_data(Segment(flow=0, seq=0))
        assert acks == [1, 1]
