"""Tests for the benchmark gate logic (``repro bench``).

The timing loops themselves are exercised by the CLI smoke path and
CI; these tests pin the *comparison* semantics — the part that decides
whether CI goes red — without running any wall-clock measurement.
"""

import json

import pytest

from repro import bench


def _baseline(**metrics):
    return {"schema": bench._PHY_SCHEMA, "config": {},
            "gate": sorted(metrics), "metrics": metrics}


class TestCompareGate:
    def test_within_tolerance_passes(self):
        base = _baseline(batched_speedup=3.0)
        assert bench.compare_gate(base, {"batched_speedup": 2.75}) == []

    def test_drop_beyond_tolerance_fails(self):
        base = _baseline(batched_speedup=3.0)
        failures = bench.compare_gate(base, {"batched_speedup": 2.5})
        assert len(failures) == 1
        assert "batched_speedup" in failures[0]

    def test_improvement_never_fails(self):
        base = _baseline(surrogate_speedup=300.0)
        assert bench.compare_gate(
            base, {"surrogate_speedup": 3000.0}) == []

    def test_gate_is_one_sided_per_metric(self):
        base = _baseline(batched_speedup=3.0, surrogate_speedup=300.0)
        failures = bench.compare_gate(
            base, {"batched_speedup": 9.0, "surrogate_speedup": 30.0})
        assert len(failures) == 1
        assert "surrogate_speedup" in failures[0]

    def test_non_gate_metrics_ignored(self):
        """Absolute frames/sec are informational: only ratios listed
        in ``gate`` can fail the check across machines."""
        base = _baseline(batched_speedup=3.0)
        base["metrics"]["full_scalar_fps"] = 100.0
        assert bench.compare_gate(
            base, {"batched_speedup": 3.0, "full_scalar_fps": 1.0}) == []

    def test_custom_tolerance(self):
        base = _baseline(batched_speedup=3.0)
        metrics = {"batched_speedup": 2.8}
        assert bench.compare_gate(base, metrics, tolerance=0.10) == []
        assert bench.compare_gate(base, metrics, tolerance=0.01)


class TestCheckBenchmarks:
    def test_missing_baseline_fails(self, tmp_path):
        lines = []
        code = bench.check_benchmarks(str(tmp_path), only="phy",
                                      echo=lines.append)
        assert code == 1
        assert any("MISSING" in line for line in lines)

    def test_unknown_schema_fails(self, tmp_path):
        path = tmp_path / bench.PHY_BENCH_FILE
        path.write_text(json.dumps({"schema": "bogus/9"}))
        lines = []
        code = bench.check_benchmarks(str(tmp_path), only="phy",
                                      echo=lines.append)
        assert code == 1
        assert any("unknown schema" in line for line in lines)

    def test_retry_merges_per_metric_max(self, tmp_path, monkeypatch):
        """A transient dip on one measurement is forgiven if the
        retry recovers; both-low fails."""
        path = tmp_path / bench.PHY_BENCH_FILE
        base = _baseline(batched_speedup=3.0)
        path.write_text(json.dumps(base))
        runs = iter([{"batched_speedup": 1.0},
                     {"batched_speedup": 3.2}])
        suites = {"phy": (bench.PHY_BENCH_FILE, bench._PHY_SCHEMA, {},
                          lambda config: next(runs), ())}
        monkeypatch.setattr(bench, "_SUITES", suites)
        assert bench.check_benchmarks(str(tmp_path), only="phy",
                                      echo=lambda _line: None) == 0

    def test_persistent_regression_fails(self, tmp_path, monkeypatch):
        path = tmp_path / bench.PHY_BENCH_FILE
        path.write_text(json.dumps(_baseline(batched_speedup=3.0)))
        suites = {"phy": (bench.PHY_BENCH_FILE, bench._PHY_SCHEMA, {},
                          lambda config: {"batched_speedup": 1.0}, ())}
        monkeypatch.setattr(bench, "_SUITES", suites)
        lines = []
        assert bench.check_benchmarks(str(tmp_path), only="phy",
                                      echo=lines.append) == 1
        assert any("FAIL" in line for line in lines)


class TestCommittedBaselines:
    """The files at the repo root must stay well-formed."""

    @pytest.mark.parametrize("name", sorted(bench._SUITES))
    def test_baseline_shape(self, name):
        import os

        filename, schema, _config, _measure, gate = \
            bench._SUITES[name]
        root = os.path.join(os.path.dirname(
            os.path.abspath(__file__)), "..")
        with open(os.path.join(root, filename)) as fh:
            baseline = json.load(fh)
        assert baseline["schema"] == schema
        assert baseline["gate"] == sorted(gate)
        for key in baseline["gate"]:
            assert float(baseline["metrics"][key]) > 0.0
        assert baseline["config"]

    def test_slot_engine_speedup_meets_the_bar(self):
        """The committed MAC-engine series must show the slot engine
        at >= 10x the event-driven oracle on the 50-station cell —
        the scale claim ``contention-xl`` rests on."""
        import os

        root = os.path.join(os.path.dirname(
            os.path.abspath(__file__)), "..")
        with open(os.path.join(root,
                               bench.CAMPAIGN_BENCH_FILE)) as fh:
            baseline = json.load(fh)
        assert "slot_vs_event_speedup" in baseline["gate"]
        metrics = baseline["metrics"]
        assert float(metrics["slot_vs_event_speedup"]) >= 10.0
        assert float(metrics["slot_station_seconds_per_sec"]) > \
            float(metrics["event_station_seconds_per_sec"])
        assert baseline["config"]["engine_n_clients"] == 50
