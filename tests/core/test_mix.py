"""Tests for the keyed splitmix64 hash (:mod:`repro.core.mix`).

``mix64``/``uniform01`` replace per-draw ``default_rng`` construction
on per-frame hot paths (trace fate draws, per-attempt fate streams),
so what matters is determinism, key sensitivity, and that the unit
draws look uniform enough to stand in for ``Generator.random()``.
"""

import numpy as np

from repro.core.mix import mix64, uniform01


class TestMix64:
    def test_deterministic(self):
        assert mix64(1, 2, 3) == mix64(1, 2, 3)

    def test_key_sensitive(self):
        baseline = mix64(1, 2, 3)
        assert mix64(1, 2, 4) != baseline
        assert mix64(0, 2, 3) != baseline

    def test_order_sensitive(self):
        assert mix64(1, 2) != mix64(2, 1)

    def test_arity_sensitive(self):
        assert mix64(1) != mix64(1, 0)

    def test_stays_in_64_bits(self):
        for args in [(0,), (2**64 - 1,), (2**70, 3), (-1,), (-5, 7)]:
            value = mix64(*args)
            assert 0 <= value < 2**64

    def test_negative_keys_fold_to_two_complement(self):
        # Python ints are masked to 64 bits, so -1 keys like 2^64-1.
        assert mix64(-1) == mix64(2**64 - 1)

    def test_avalanche(self):
        """Flipping one input bit flips roughly half the output."""
        flips = [bin(mix64(x) ^ mix64(x ^ 1)).count("1")
                 for x in range(0, 4096, 64)]
        assert 16 < np.mean(flips) < 48


class TestUniform01:
    def test_unit_interval(self):
        draws = [uniform01(i, 7) for i in range(1000)]
        assert all(0.0 <= d < 1.0 for d in draws)

    def test_deterministic(self):
        assert uniform01(3, 1, 4) == uniform01(3, 1, 4)

    def test_roughly_uniform(self):
        draws = np.array([uniform01(i) for i in range(4000)])
        assert abs(draws.mean() - 0.5) < 0.03
        counts, _ = np.histogram(draws, bins=10, range=(0.0, 1.0))
        assert counts.min() > 4000 / 10 * 0.7
