"""Tests for optimal threshold computation (paper section 3.3)."""

import numpy as np
import pytest

from repro.core.thresholds import (FrameLevelArq, PartialBitArq,
                                   compute_thresholds)
from repro.phy.rates import RATE_TABLE

RATES = RATE_TABLE.prototype_subset()


@pytest.fixture(scope="module")
def frame_arq_table():
    return compute_thresholds(RATES, FrameLevelArq(frame_bits=10000))


@pytest.fixture(scope="module")
def harq_table():
    return compute_thresholds(RATES, PartialBitArq(cost_per_error=500.0))


class TestRecoveryModels:
    def test_frame_arq_throughput_decays_fast(self):
        arq = FrameLevelArq(frame_bits=10000)
        rate = RATES[3]
        assert arq.throughput(rate, 0.0) == rate.mbps
        assert arq.throughput(rate, 1e-3) < 0.01 * rate.mbps

    def test_harq_tolerates_moderate_ber(self):
        harq = PartialBitArq(cost_per_error=500.0)
        rate = RATES[3]
        assert harq.throughput(rate, 1e-4) > 0.9 * rate.mbps
        assert harq.throughput(rate, 1e-2) < 0.2 * rate.mbps

    def test_validation(self):
        with pytest.raises(ValueError):
            FrameLevelArq(frame_bits=0)
        with pytest.raises(ValueError):
            PartialBitArq(cost_per_error=0.0)


class TestThresholdStructure:
    def test_alpha_below_beta(self, frame_arq_table):
        for i in range(len(RATES)):
            t = frame_arq_table[i]
            assert t.alpha < t.beta

    def test_edges(self, frame_arq_table):
        assert frame_arq_table[0].beta == pytest.approx(0.5)
        assert frame_arq_table[len(RATES) - 1].alpha <= 1e-11

    def test_paper_example_orders_of_magnitude(self, frame_arq_table):
        # Paper: 18 Mbps with 10000-bit frames and frame ARQ has
        # thresholds around (1e-7..1e-6, 1e-5..1e-4).
        t = frame_arq_table[3]          # QPSK 3/4 = 18 Mbps
        assert 1e-8 < t.alpha < 1e-4
        assert 1e-6 < t.beta < 1e-3
        assert t.beta / t.alpha >= 5.0

    def test_harq_shifts_thresholds_up(self, frame_arq_table, harq_table):
        # Smarter recovery tolerates orders of magnitude more BER
        # before dropping rate (paper's 1e-3 vs 1e-5 example).
        for i in range(1, len(RATES)):
            assert harq_table[i].beta > 10 * frame_arq_table[i].beta

    def test_classify(self, frame_arq_table):
        t = frame_arq_table[3]
        assert t.classify(t.beta * 10) == -1
        assert t.classify(t.alpha / 10) == 1
        assert t.classify(np.sqrt(t.alpha * t.beta)) == 0


class TestBestRate:
    def test_stays_in_sweet_spot(self, frame_arq_table):
        t = frame_arq_table[3]
        mid = np.sqrt(t.alpha * t.beta)
        assert frame_arq_table.best_rate(3, mid) == 3

    def test_moves_down_on_high_ber(self, frame_arq_table):
        assert frame_arq_table.best_rate(3, 1e-2) < 3

    def test_moves_up_on_tiny_ber(self, frame_arq_table):
        assert frame_arq_table.best_rate(3, 1e-12) > 3

    def test_jump_limit_respected(self, frame_arq_table):
        assert frame_arq_table.best_rate(5, 0.5, max_jump=2) >= 3
        assert frame_arq_table.best_rate(0, 1e-12, max_jump=1) <= 1

    def test_edge_rates_clamped(self, frame_arq_table):
        assert frame_arq_table.best_rate(0, 0.4) == 0
        top = len(RATES) - 1
        assert frame_arq_table.best_rate(top, 1e-12) == top

    def test_multi_level_jump_on_terrible_ber(self, frame_arq_table):
        # Paper: "if the BER at 18 Mbps is above 1e-2, jump two rates".
        assert frame_arq_table.best_rate(3, 5e-2) == 1
