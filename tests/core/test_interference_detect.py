"""Tests for the SoftPHY interference detector."""

import numpy as np
import pytest

from repro.core.interference import InterferenceDetector


def _profile_to_hints(profile, bits_per_symbol=50):
    """Build synthetic hints whose per-symbol BER equals `profile`."""
    hints = []
    for p in profile:
        p = min(max(p, 1e-12), 0.5)
        s = np.log((1 - p) / p)
        hints.extend([s] * bits_per_symbol)
    info_symbol = np.repeat(np.arange(len(profile)), bits_per_symbol)
    return np.array(hints), info_symbol


@pytest.fixture()
def detector():
    return InterferenceDetector()


class TestJumpDetection:
    def test_detects_tail_collision(self, detector):
        profile = [1e-5] * 6 + [0.2] * 4
        report = detector.analyze_profile(np.array(profile))
        assert report.detected
        # One guard symbol before the jump is excised along with the
        # collided tail (decoder memory crosses the boundary).
        assert report.clean_mask[:5].all()
        assert not report.clean_mask[5:].any()
        assert report.ber_clean == pytest.approx(1e-5)
        assert report.ber_full > 0.05

    def test_detects_mid_frame_collision(self, detector):
        profile = [1e-6] * 4 + [0.3] * 3 + [1e-6] * 4
        report = detector.analyze_profile(np.array(profile))
        assert report.detected
        assert report.clean_mask[:3].all()
        assert report.clean_mask[8:].all()
        assert not report.clean_mask[3:8].any()

    def test_clean_frame_not_flagged(self, detector):
        profile = np.full(10, 1e-4)
        report = detector.analyze_profile(profile)
        assert not report.detected
        assert report.clean_mask.all()
        assert report.ber_clean == report.ber_full

    def test_gradual_fade_not_flagged(self, detector):
        # A fade degrades BER gradually across symbols: below the jump
        # threshold at each step, so it must not be called a collision.
        profile = np.logspace(-6, -2.2, 12)
        report = detector.analyze_profile(profile)
        assert not report.detected

    def test_uniformly_bad_frame_not_flagged(self, detector):
        # A frame that is bad everywhere (deep fade for its entire
        # duration) has no jump and must be attributed to the channel.
        profile = np.full(8, 0.2)
        report = detector.analyze_profile(profile)
        assert not report.detected
        assert report.ber_clean == pytest.approx(0.2)

    def test_whole_frame_collision_after_first_symbol(self, detector):
        # Jump right after symbol 0: everything after is bad; the
        # pre-jump prefix is kept as the clean portion.
        profile = np.array([1e-6] + [0.25] * 9)
        report = detector.analyze_profile(profile)
        assert report.detected
        assert report.clean_mask[0]
        assert report.ber_clean == pytest.approx(1e-6)


class TestBitLevelExcision:
    def test_clean_ber_recomputed_over_bits(self, detector):
        hints, info_symbol = _profile_to_hints([1e-5] * 5 + [0.3] * 5)
        report = detector.analyze(hints, info_symbol, 10)
        assert report.detected
        assert report.ber_clean == pytest.approx(1e-5, rel=0.01)

    def test_clean_fraction(self, detector):
        hints, info_symbol = _profile_to_hints([1e-5] * 8 + [0.3] * 2)
        report = detector.analyze(hints, info_symbol, 10)
        # 2 collided symbols + 1 guard symbol excised out of 10.
        assert report.clean_fraction == pytest.approx(0.7)


class TestConfiguration:
    def test_threshold_controls_sensitivity(self):
        # A 0.7-decade step: below the default 1-decade threshold but
        # above a tightened one.
        profile = np.array([1e-4] * 5 + [5e-3] * 5)
        loose = InterferenceDetector(jump_decades=1.0)
        tight = InterferenceDetector(jump_decades=0.3)
        assert not loose.analyze_profile(profile).detected
        assert tight.analyze_profile(profile).detected

    def test_floor_hides_subthreshold_noise(self):
        # Wild estimation noise below the sensitivity floor must never
        # register as a jump: 1e-30 vs 1e-8 are both "clean".
        profile = np.array([1e-30, 1e-8, 1e-25, 1e-12, 1e-30])
        report = InterferenceDetector().analyze_profile(profile)
        assert not report.detected

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            InterferenceDetector(jump_decades=0.0)
        with pytest.raises(ValueError):
            InterferenceDetector(profile_floor=0.6)

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            InterferenceDetector().analyze_profile(np.array([]))
