"""Tests for the BER feedback frame and its 32-bit wire encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.core.feedback import Feedback, decode_ber, encode_ber


class TestBerEncoding:
    def test_zero(self):
        assert decode_ber(encode_ber(0.0)) == 0.0

    def test_one_half(self):
        assert decode_ber(encode_ber(0.5)) == pytest.approx(0.5, rel=1e-6)

    def test_quantisation_error_small(self):
        for ber in (1e-9, 3e-7, 1e-5, 2e-3, 0.1):
            assert decode_ber(encode_ber(ber)) == pytest.approx(ber,
                                                                rel=1e-5)

    def test_below_floor_collapses_to_zero(self):
        assert decode_ber(encode_ber(1e-14)) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            encode_ber(1.5)
        with pytest.raises(ValueError):
            decode_ber(-1)
        with pytest.raises(ValueError):
            decode_ber(2 ** 32)

    @given(st.floats(min_value=1e-11, max_value=1.0))
    def test_roundtrip_property(self, ber):
        # Values within one quantisation step of the 1e-12 floor may
        # round to 0; everything above 1e-11 must round-trip.
        assert decode_ber(encode_ber(ber)) == pytest.approx(ber, rel=1e-4)


class TestFeedbackFrame:
    def test_quantised_preserves_metadata(self):
        fb = Feedback(src=1, dest=0, seq=42, ber=3.3e-5, frame_ok=True,
                      interference_detected=True, snr_db=12.5)
        q = fb.quantised()
        assert (q.src, q.dest, q.seq) == (1, 0, 42)
        assert q.frame_ok and q.interference_detected
        assert q.snr_db == 12.5
        assert q.ber == pytest.approx(3.3e-5, rel=1e-5)

    def test_defaults(self):
        fb = Feedback(src=0, dest=1, seq=0, ber=0.0, frame_ok=False)
        assert not fb.interference_detected
        assert not fb.postamble_only
