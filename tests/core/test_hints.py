"""Tests for SoftPHY hint to BER conversion (paper Eq. 1-4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hints import (error_probabilities, frame_ber_estimate,
                              hints_from_llrs, symbol_ber_profile)


class TestHintsFromLlrs:
    def test_magnitudes(self):
        llrs = np.array([-3.0, 0.0, 5.0])
        assert np.array_equal(hints_from_llrs(llrs), [3.0, 0.0, 5.0])


class TestErrorProbabilities:
    def test_eq3_values(self):
        # p = 1 / (1 + e^s): s=0 -> 0.5 (no information), large s -> ~0.
        p = error_probabilities(np.array([0.0, np.log(3), 20.0]))
        assert p[0] == pytest.approx(0.5)
        assert p[1] == pytest.approx(0.25)       # 1/(1+3)
        assert p[2] == pytest.approx(np.exp(-20), rel=1e-6)

    def test_monotone_decreasing(self):
        s = np.linspace(0, 30, 100)
        p = error_probabilities(s)
        assert np.all(np.diff(p) < 0)

    def test_huge_hints_stable(self):
        p = error_probabilities(np.array([1000.0]))
        assert p[0] == 0.0  # underflows cleanly, no overflow warnings

    def test_negative_hint_rejected(self):
        with pytest.raises(ValueError):
            error_probabilities(np.array([-1.0]))

    @given(st.floats(min_value=0, max_value=100))
    def test_range_property(self, s):
        p = error_probabilities(np.array([s]))[0]
        assert 0.0 <= p <= 0.5


class TestFrameBer:
    def test_average(self):
        hints = np.array([0.0, 0.0])     # both bits are coin flips
        assert frame_ber_estimate(hints) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            frame_ber_estimate(np.array([]))

    def test_error_free_frame_nonzero_estimate(self):
        # Finite hints always give a nonzero BER estimate — the paper's
        # "estimate channel BER even using a frame received with no
        # errors".
        hints = np.full(1000, 12.0)
        estimate = frame_ber_estimate(hints)
        assert 0 < estimate < 1e-4


class TestSymbolProfile:
    def test_eq4_per_symbol_means(self):
        hints = np.array([0.0, 0.0, 20.0, 20.0])
        info_symbol = np.array([0, 0, 1, 1])
        profile = symbol_ber_profile(hints, info_symbol, 2)
        assert profile[0] == pytest.approx(0.5)
        assert profile[1] == pytest.approx(np.exp(-20), rel=1e-5)

    def test_empty_symbol_inherits_previous(self):
        hints = np.array([0.0, 0.0])
        info_symbol = np.array([0, 0])
        profile = symbol_ber_profile(hints, info_symbol, 3)
        assert profile[1] == profile[0]
        assert profile[2] == profile[0]

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            symbol_ber_profile(np.zeros(3), np.zeros(4, dtype=int), 2)
        with pytest.raises(ValueError):
            symbol_ber_profile(np.zeros(3), np.zeros(3, dtype=int), 0)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 6), st.integers(2, 30), st.integers(0, 2**32 - 1))
    def test_profile_mean_matches_frame_ber(self, n_symbols, per_symbol,
                                            seed):
        # When every symbol carries the same number of bits, the mean
        # of the per-symbol profile equals the frame BER estimate.
        rng = np.random.default_rng(seed)
        hints = rng.uniform(0, 20, size=n_symbols * per_symbol)
        info_symbol = np.repeat(np.arange(n_symbols), per_symbol)
        profile = symbol_ber_profile(hints, info_symbol, n_symbols)
        assert np.mean(profile) == pytest.approx(
            frame_ber_estimate(hints), rel=1e-9)
