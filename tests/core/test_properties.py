"""Property-based tests across the core SoftRate machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hints import error_probabilities, frame_ber_estimate
from repro.core.interference import InterferenceDetector
from repro.core.prediction import predict_ber
from repro.core.thresholds import (FrameLevelArq, PartialBitArq,
                                   compute_thresholds)
from repro.phy.rates import RATE_TABLE

RATES = RATE_TABLE.prototype_subset()


class TestThresholdProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=500, max_value=20000))
    def test_alpha_beta_ordered_for_any_frame_size(self, frame_bits):
        table = compute_thresholds(RATES, FrameLevelArq(frame_bits))
        for i in range(len(RATES)):
            assert table[i].alpha < table[i].beta

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=500, max_value=20000))
    def test_bigger_frames_need_lower_ber(self, frame_bits):
        small = compute_thresholds(RATES, FrameLevelArq(frame_bits))
        large = compute_thresholds(RATES,
                                   FrameLevelArq(frame_bits * 4))
        # A frame 4x larger is 4x more fragile: the step-down point
        # must not move up.
        for i in range(1, len(RATES)):
            assert large[i].beta <= small[i].beta * 1.5

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=1e-9, max_value=0.4),
           st.integers(min_value=0, max_value=5))
    def test_best_rate_always_in_table(self, ber, current):
        table = compute_thresholds(RATES, FrameLevelArq(10000))
        best = table.best_rate(current, ber)
        assert 0 <= best < len(RATES)
        assert abs(best - current) <= 2

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=1e-9, max_value=0.4),
           st.integers(min_value=0, max_value=5),
           st.integers(min_value=1, max_value=3))
    def test_best_rate_respects_jump_limit(self, ber, current, jump):
        table = compute_thresholds(RATES, FrameLevelArq(10000))
        best = table.best_rate(current, ber, max_jump=jump)
        assert abs(best - current) <= jump

    @settings(max_examples=10, deadline=None)
    @given(st.floats(min_value=10.0, max_value=2000.0))
    def test_harq_cost_monotone(self, cost):
        cheap = PartialBitArq(cost)
        pricey = PartialBitArq(cost * 3)
        for ber in (1e-5, 1e-3, 1e-2):
            assert cheap.throughput(RATES[3], ber) >= \
                pricey.throughput(RATES[3], ber)


class TestDetectorProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=1e-12, max_value=0.5),
                    min_size=2, max_size=40))
    def test_report_invariants(self, profile):
        report = InterferenceDetector().analyze_profile(
            np.array(profile))
        assert report.clean_mask.shape == (len(profile),)
        assert report.clean_mask.any()
        assert 0.0 <= report.ber_clean <= 0.5 + 1e-12
        assert 0.0 <= report.ber_full <= 0.5 + 1e-12
        if not report.detected:
            assert report.ber_clean == report.ber_full

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=1e-12, max_value=0.5),
           st.integers(min_value=2, max_value=30))
    def test_constant_profile_never_detected(self, level, n):
        profile = np.full(n, level)
        report = InterferenceDetector().analyze_profile(profile)
        assert not report.detected

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=8))
    def test_excised_ber_not_above_full(self, clean_len, bad_len):
        profile = np.array([1e-6] * clean_len + [0.4] * bad_len)
        report = InterferenceDetector().analyze_profile(profile)
        assert report.ber_clean <= report.ber_full + 1e-12


class TestHintProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=80.0),
                    min_size=1, max_size=200))
    def test_frame_ber_bounded_by_extremes(self, hints):
        hints = np.array(hints)
        p = error_probabilities(hints)
        estimate = frame_ber_estimate(hints)
        assert p.min() - 1e-12 <= estimate <= p.max() + 1e-12

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=80.0),
                    min_size=1, max_size=100),
           st.floats(min_value=0.1, max_value=5.0))
    def test_weaker_hints_higher_ber(self, hints, shrink):
        hints = np.array(hints)
        weaker = hints / (1.0 + shrink)
        assert frame_ber_estimate(weaker) >= \
            frame_ber_estimate(hints) - 1e-15


class TestPredictionThresholdConsistency:
    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=1e-9, max_value=1e-2),
           st.integers(min_value=1, max_value=4))
    def test_classify_agrees_with_best_rate_direction(self, ber, i):
        table = compute_thresholds(RATES, FrameLevelArq(10000))
        direction = table[i].classify(ber)
        best = table.best_rate(i, ber, max_jump=2)
        if direction == 0:
            assert best == i
        elif direction > 0:
            assert best >= i
        else:
            assert best <= i

    @given(st.floats(min_value=1e-10, max_value=1e-3))
    def test_prediction_chain_consistent(self, ber):
        # Predicting 0->2 equals predicting 0->1 then 1->2 (modulo
        # clipping at the extremes).
        direct = predict_ber(ber, 0, 2)
        chained = predict_ber(predict_ber(ber, 0, 1), 1, 2)
        assert direct == pytest.approx(chained, rel=1e-9)
