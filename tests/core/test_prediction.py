"""Tests for cross-rate BER prediction."""

import pytest
from hypothesis import given, strategies as st

from repro.core.prediction import (BER_CEILING, BER_FLOOR, predict_ber)


class TestPrediction:
    def test_one_step_up_is_10x(self):
        assert predict_ber(1e-5, 2, 3) == pytest.approx(1e-4)

    def test_one_step_down_is_tenth(self):
        assert predict_ber(1e-5, 2, 1) == pytest.approx(1e-6)

    def test_same_rate_identity(self):
        assert predict_ber(3e-4, 2, 2) == pytest.approx(3e-4)

    def test_two_step_jump(self):
        assert predict_ber(1e-6, 1, 3) == pytest.approx(1e-4)

    def test_ceiling(self):
        assert predict_ber(0.2, 0, 3) == BER_CEILING

    def test_floor(self):
        assert predict_ber(1e-11, 3, 0) == BER_FLOOR

    def test_custom_separation(self):
        assert predict_ber(1e-4, 0, 1, separation=100.0) == \
            pytest.approx(1e-2)

    def test_validation(self):
        with pytest.raises(ValueError):
            predict_ber(1.5, 0, 1)
        with pytest.raises(ValueError):
            predict_ber(1e-4, 0, 1, separation=0.5)


@given(st.floats(min_value=1e-10, max_value=0.4),
       st.integers(0, 5), st.integers(0, 5))
def test_monotone_in_rate_property(ber, i, j):
    # Higher rate must never be predicted to have lower BER.
    if i <= j:
        assert predict_ber(ber, i, j) >= ber * (1 - 1e-12)
    else:
        assert predict_ber(ber, i, j) <= ber * (1 + 1e-12)


@given(st.floats(min_value=1e-8, max_value=1e-3), st.integers(0, 4))
def test_roundtrip_property(ber, i):
    # Predicting up one rate then back down returns the original
    # (within clipping).
    up = predict_ber(ber, i, i + 1)
    back = predict_ber(up, i + 1, i)
    assert back == pytest.approx(ber, rel=1e-9)
