"""Ablation: SoftRate's separation factor, jump depth, silent limit.

Design questions (DESIGN.md):

* **separation** — the assumed BER ratio between adjacent rates.  The
  paper uses 10 (its hardware's measured separation); our simulated
  channel's waterfalls are steeper (~3 decades/step), and link goodput
  should peak when the parameter matches the channel.
* **max_jump** — 1 vs 2 (the paper implements up to 2).
* **silent_loss_limit** — the 3-consecutive-silent-losses rule.
"""

import numpy as np
from conftest import emit, run_once

from repro.analysis.tables import format_table
from repro.core.feedback import Feedback
from repro.core.thresholds import FrameLevelArq, compute_thresholds
from repro.phy.rates import RATE_TABLE
from repro.rateadapt import SoftRate
from repro.sim.topology import make_airtime_fn
from repro.channel.mobility import WalkingTrajectory
from repro.traces.generate import generate_fading_trace

RATES = RATE_TABLE.prototype_subset()
PAYLOAD = 11200


def _link_goodput(adapter, trace, duration=8.0):
    """Saturated link-level loop (no TCP) measuring goodput."""
    airtime = make_airtime_fn(RATES)
    t, ok_bits = 0.0, 0
    while t < duration:
        rate = adapter.choose_rate(t)
        obs = trace.observe(t, rate)
        frame_time = airtime(PAYLOAD, rate)
        if obs.detected:
            feedback = Feedback(src=1, dest=0, seq=0, ber=obs.ber_est,
                                frame_ok=obs.delivered,
                                snr_db=obs.snr_db)
            adapter.on_feedback(t, rate, feedback, frame_time)
            if obs.delivered:
                ok_bits += PAYLOAD
        else:
            adapter.on_silent_loss(t, rate, frame_time)
        t += frame_time + 80e-6
    return ok_bits / duration / 1e6


def _walking_trace(seed=77):
    rng = np.random.default_rng(seed)
    trajectory = WalkingTrajectory(rng, start_distance=5.0)
    return generate_fading_trace(rng, 10.0, trajectory.mean_snr_db,
                                 doppler_hz=40.0)


def _sweep():
    trace = _walking_trace()
    results = {"separation": {}, "max_jump": {}, "silent_limit": {}}
    for separation in (10.0, 100.0, 1000.0, 3160.0):
        table = compute_thresholds(RATES, FrameLevelArq(PAYLOAD + 32),
                                   separation=separation)
        adapter = SoftRate(RATES, thresholds=table)
        results["separation"][separation] = _link_goodput(adapter,
                                                          trace)
    calibrated = compute_thresholds(RATES, FrameLevelArq(PAYLOAD + 32),
                                    separation=1000.0)
    for max_jump in (1, 2, 3):
        adapter = SoftRate(RATES, thresholds=calibrated,
                           max_jump=max_jump)
        results["max_jump"][max_jump] = _link_goodput(adapter, trace)
    for limit in (1, 3, 6):
        adapter = SoftRate(RATES, thresholds=calibrated,
                           silent_loss_limit=limit)
        results["silent_limit"][limit] = _link_goodput(adapter, trace)
    return results


def test_ablation_softrate_parameters(benchmark):
    results = run_once(benchmark, _sweep)

    for knob, values in results.items():
        rows = [[str(k), f"{v:.2f}"] for k, v in values.items()]
        emit(f"Ablation: SoftRate {knob} (link goodput, Mbps)",
             format_table([knob, "goodput"], rows))

    separation = results["separation"]
    # Matching the channel's measured separation (about 3 decades)
    # beats the paper's hardware-derived 10x by a clear margin.
    assert separation[1000.0] > separation[10.0] * 1.05
    # All variants still work (no collapse).
    assert min(separation.values()) > 1.0
    assert min(results["max_jump"].values()) > 1.0
    assert min(results["silent_limit"].values()) > 1.0
