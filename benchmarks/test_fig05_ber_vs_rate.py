"""Fig. 5: BER at QPSK 3/4 vs BER at the other bit rates.

Expected shape: per-snapshot BER is monotone across rates (the paper
measures 96% of 5 ms cycles monotonic), and adjacent rates are
separated by at least an order of magnitude within the usable band —
the two observations SoftRate's prediction heuristic rests on.
"""

from conftest import emit, run_experiment

from repro.analysis.tables import format_table


def test_fig5_cross_rate_structure(benchmark):
    data = run_experiment(benchmark, "fig05", seed=5)

    rows = []
    for rate in sorted(data.pairs):
        sep = data.median_separation_decades(rate)
        rows.append([data.rate_names[rate],
                     f"{sep:+.2f}" if sep == sep else "-"])
    monotone = data.monotone_fraction()
    rows.append(["monotone snapshots", f"{monotone:.0%}"])
    emit("Fig. 5: median BER separation vs QPSK 3/4 (decades)",
         format_table(["rate", "separation"], rows))

    # Observation 1: monotone in the large majority of snapshots.
    # The paper measures 96%; our traces sample the receiver-impairment
    # jitter independently per rate (the paper's round-robin shares one
    # hardware state across a 5 ms cycle), which costs some
    # monotonicity — see EXPERIMENTS.md.
    assert monotone > 0.75
    # Observation 2: adjacent rates at least ~an order of magnitude
    # apart (our simulated channel is steeper than the paper's
    # hardware: >= 1 decade, typically 2-4).
    below = data.median_separation_decades(2)
    above = data.median_separation_decades(4)
    assert below < -1.0
    assert above > 1.0
    # Two rates away: strictly more separated.
    assert data.median_separation_decades(1) < below
    assert data.median_separation_decades(5) > above
