"""Fig. 3: SoftPHY hint patterns — collision vs fading loss.

Expected shape: the collided frame's per-symbol BER profile jumps
abruptly (orders of magnitude between adjacent symbols) at the
collision boundary and the detector flags it; the faded frame degrades
gradually and is not flagged.
"""

import numpy as np
from conftest import emit, run_experiment

from repro.analysis.tables import format_table


def test_fig3_hint_patterns(benchmark):
    data = run_experiment(benchmark, "fig03")

    coll_steps = np.abs(np.diff(np.log10(np.clip(
        data.collision_profile, 1e-3, 0.5))))
    fade_steps = np.abs(np.diff(np.log10(np.clip(
        data.fading_profile, 1e-3, 0.5))))
    rows = [
        ["collision: frame BER", f"{data.collision_errors.mean():.3f}"],
        ["collision: max per-symbol log-step (decades)",
         f"{coll_steps.max():.2f}"],
        ["collision: detector verdict", data.collision_detected],
        ["fading: frame BER", f"{data.fading_errors.mean():.3f}"],
        ["fading: max per-symbol log-step (decades)",
         f"{fade_steps.max():.2f}"],
        ["fading: detector verdict", data.fading_detected],
    ]
    emit("Fig. 3: hint patterns", format_table(["quantity", "value"],
                                               rows))

    # Both frames actually have bit errors.
    assert data.collision_errors.mean() > 0.01
    assert data.fading_errors.sum() >= 3
    # The collision boundary is a cliff; the fade is not.
    assert coll_steps.max() > 1.0
    assert data.collision_detected
    assert not data.fading_detected
    # The BER profile after the collision boundary dwarfs the clean
    # prefix by orders of magnitude.
    boundary = max(data.collision_boundary_symbol, 0)
    profile = data.collision_profile
    assert profile[boundary:].mean() > 100 * max(
        profile[:boundary].mean(), 1e-9)
