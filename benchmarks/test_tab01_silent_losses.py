"""Table 1 and Fig. 4: silent losses under hidden-terminal collisions.

Expected shape (paper): the fraction of frames losing both preamble
and postamble stays modest (paper: under 15%) for the *large*-frame
sender; with unequal sizes the small-frame sender suffers more (it can
be fully contained in the larger frame) while the large-frame sender
barely suffers (~1%); and runs of 3+ consecutive silent losses are
uncommon — the basis for SoftRate's 3-silent-loss rule.
"""

from conftest import emit, run_once

from repro.analysis.tables import format_table
from repro.experiments.api import run


def _run_both():
    equal = run("tab01", frame_bytes=(1400, 1400), duration=4.0).raw
    unequal = run("tab01", frame_bytes=(100, 1400), duration=4.0).raw
    return equal, unequal


def _ccdf_at(ccdf_points, run_length):
    value = 0.0
    for x, p in ccdf_points:
        if x >= run_length:
            return p
        value = p
    return 0.0


def test_table1_and_fig4(benchmark):
    equal, unequal = run_once(benchmark, _run_both)

    rows = [
        ["1400 B / 1400 B", f"{equal.silent_fraction[1]:.0%}",
         f"{equal.silent_fraction[2]:.0%}"],
        ["100 B / 1400 B", f"{unequal.silent_fraction[1]:.0%}",
         f"{unequal.silent_fraction[2]:.0%}"],
    ]
    emit("Table 1: frames losing preamble AND postamble",
         format_table(["frame sizes", "f1", "f2"], rows))

    fig4 = []
    for label, result in [("equal", equal), ("unequal", unequal)]:
        for sender in (1, 2):
            fig4.append([
                f"{label} s{sender}",
                f"{_ccdf_at(result.silent_run_ccdf[sender], 2):.3f}",
                f"{_ccdf_at(result.silent_run_ccdf[sender], 3):.3f}",
                f"{_ccdf_at(result.silent_run_ccdf[sender], 5):.3f}",
            ])
    emit("Fig. 4: CCDF of consecutive silent-loss runs",
         format_table(["sender", "P(run>=2)", "P(run>=3)", "P(run>=5)"],
                      fig4))

    # Equal sizes: both senders suffer comparably and modestly.
    assert equal.silent_fraction[1] < 0.35
    assert equal.silent_fraction[2] < 0.35
    ratio = equal.silent_fraction[1] / max(equal.silent_fraction[2],
                                           1e-9)
    assert 0.5 < ratio < 2.0
    # Unequal: the small-frame sender suffers more, the large-frame
    # sender much less (paper: 14% vs 1%).
    assert unequal.silent_fraction[1] > 3 * unequal.silent_fraction[2]
    assert unequal.silent_fraction[2] < 0.08
    # Long runs are uncommon: P(run >= 3) well below P(run >= 1) = 1.
    for sender in (1, 2):
        assert _ccdf_at(equal.silent_run_ccdf[sender], 3) < 0.35
