"""Figs. 13 & 14: TCP over slow-fading mobile channels (the headline).

Expected shape (paper section 6.2): SoftRate outperforms every
realisable protocol and comes closest to omniscient; it beats the
trained SNR protocols by up to ~20%, RRAA by up to ~2x, and SampleRate
by up to ~4x; CHARM's SNR averaging makes it slightly worse than
instantaneous SNR; and SoftRate picks the omniscient rate for the
majority of frames (Fig. 14; paper >80%, we measure ~70%).
"""

from conftest import emit, run_experiment

from repro.analysis.tables import format_table

CLIENTS = (1, 3, 5)


def test_fig13_fig14_slow_fading(benchmark):
    result = run_experiment(benchmark, "fig13", client_counts=CLIENTS,
                            duration=4.0, seeds=(1, 2))

    rows = [[name] + [f"{v:.2f}" for v in vals]
            for name, vals in result.throughput_mbps.items()]
    emit("Fig. 13: aggregate TCP throughput (Mbps) vs number of clients",
         format_table(["algorithm"] + [f"N={n}" for n in CLIENTS],
                      rows))
    rows14 = [[name, f"{a.overselect:.2f}", f"{a.accurate:.2f}",
               f"{a.underselect:.2f}"]
              for name, a in result.accuracy.items()]
    emit("Fig. 14: rate selection accuracy (N=1)",
         format_table(["algorithm", "over", "accurate", "under"],
                      rows14))

    tput = result.throughput_mbps
    for i, _n in enumerate(CLIENTS):
        omniscient = tput["Omniscient"][i]
        softrate = tput["SoftRate"][i]
        # Omniscient upper-bounds everyone; SoftRate comes closest.
        for name, vals in tput.items():
            if name != "Omniscient":
                assert vals[i] <= omniscient * 1.05, (name, i)
        assert softrate >= max(
            v[i] for k, v in tput.items()
            if k not in ("Omniscient", "SoftRate")) * 0.95, i
        # Frame-level protocols trail at every N; the paper's
        # headline factors (~2x RRAA, ~4x SampleRate) are
        # single-flow gaps — contention narrows them as N grows
        # because collision losses hit every protocol alike.
        assert softrate > 1.05 * tput["RRAA"][i]
        assert softrate > 1.25 * tput["SampleRate"][i]
    # Strongest single-flow gaps: ~2x RRAA, ~4x SampleRate (paper).
    assert tput["SoftRate"][0] > 1.8 * tput["RRAA"][0]
    assert tput["SoftRate"][0] > 3.0 * tput["SampleRate"][0]

    # Fig. 14 shape: SoftRate is accurate for the large majority of
    # frames; SNR protocols underselect; omniscient is perfect.
    acc = result.accuracy
    assert acc["Omniscient"].accurate == 1.0
    assert acc["SoftRate"].accurate > 0.6
    assert acc["SoftRate"].accurate > acc["SNR (trained)"].accurate
    assert acc["SNR (trained)"].underselect > \
        acc["SNR (trained)"].overselect
    assert acc["SoftRate"].accurate > acc["RRAA"].accurate
    assert acc["SoftRate"].accurate > acc["SampleRate"].accurate
