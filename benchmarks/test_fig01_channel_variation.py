"""Fig. 1: SNR and BER fluctuations over a walking fading channel.

Expected shape: large-scale decay over the 10 s window; multipath
fades tens of milliseconds long and >15 dB deep in the 350 ms detail;
BER swinging over many orders of magnitude with the fades.
"""

import numpy as np
from conftest import emit, run_experiment

from repro.analysis.tables import format_table


def test_fig1_channel_variation(benchmark):
    data = run_experiment(benchmark, "fig01", seed=1)

    half = data.window_snr_db.size // 2
    early = float(np.median(data.window_snr_db[:half]))
    late = float(np.median(data.window_snr_db[half:]))
    fades = data.fade_durations_ms()
    rows = [
        ["median SNR, first 5 s (dB)", f"{early:.1f}"],
        ["median SNR, last 5 s (dB)", f"{late:.1f}"],
        ["detail-window fade depth (dB)", f"{data.fade_depth_db():.1f}"],
        ["fades in 350 ms detail", len(fades)],
        ["median fade duration (ms)",
         f"{np.median(fades):.1f}" if fades else "-"],
        ["BER dynamic range (decades)",
         f"{np.log10(max(data.ber.max(), 1e-12) / max(data.ber.min(), 1e-12)):.0f}"],
    ]
    emit("Fig. 1: walking-channel variation", format_table(
        ["quantity", "value"], rows))

    # Large-scale decay while walking away.
    assert late < early - 3.0
    # Multipath fades: deep and tens of ms long.
    assert data.fade_depth_db() > 15.0
    assert len(fades) >= 1
    if fades:
        assert 1.0 < float(np.median(fades)) < 200.0
    # BER rides the fades across orders of magnitude.
    assert data.ber.max() > 1e3 * max(data.ber.min(), 1e-12)
