"""Ablation: the error-recovery model behind the thresholds.

Design question (DESIGN.md / paper section 3.3): BER thresholds are
derived from the link layer's recovery mechanism.  Expected: the
H-ARQ-style model tolerates orders of magnitude more BER before
stepping down (the paper's 1e-3 vs 1e-5 example), and pairing the
*matched* thresholds with each recovery layer maximises its goodput.
"""

import numpy as np
from conftest import emit, run_once

from repro.analysis.tables import format_table
from repro.core.thresholds import (FrameLevelArq, PartialBitArq,
                                   compute_thresholds)
from repro.phy.rates import RATE_TABLE

RATES = RATE_TABLE.prototype_subset()


def _build():
    frame_arq = compute_thresholds(RATES, FrameLevelArq(10000))
    harq = compute_thresholds(RATES, PartialBitArq(500.0))
    return frame_arq, harq


def test_ablation_recovery_models(benchmark):
    frame_arq, harq = run_once(benchmark, _build)

    rows = []
    for i, rate in enumerate(RATES):
        rows.append([rate.name,
                     f"{frame_arq[i].alpha:.1e}",
                     f"{frame_arq[i].beta:.1e}",
                     f"{harq[i].alpha:.1e}",
                     f"{harq[i].beta:.1e}"])
    emit("Ablation: optimal thresholds per recovery model",
         format_table(["rate", "ARQ alpha", "ARQ beta",
                       "H-ARQ alpha", "H-ARQ beta"], rows))

    # The paper's worked example: frame-ARQ beta for 18 Mbps is of
    # order 1e-5; the H-ARQ beta is orders of magnitude higher (the
    # "up to a much higher BER, say 1e-3" example).
    assert 1e-6 < frame_arq[3].beta < 1e-3
    assert harq[3].beta > 10 * frame_arq[3].beta
    # Under H-ARQ, a BER that frame-ARQ flees is inside the optimal
    # band, so the throughput ranking flips at that operating point.
    ber = float(np.sqrt(harq[3].alpha * harq[3].beta))
    assert frame_arq[3].classify(ber) == -1
    assert harq[3].classify(ber) == 0
    # Matched thresholds maximise each model's own predicted goodput.
    rate = RATES[3]
    arq_model = FrameLevelArq(10000)
    harq_model = PartialBitArq(500.0)
    assert harq_model.throughput(rate, ber) > \
        arq_model.throughput(rate, ber)
