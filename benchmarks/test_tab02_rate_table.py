"""Tables 2 and 3: the rate table and the OFDM operating modes."""

from conftest import emit, run_experiment

from repro.phy.rates import MODES, RATE_TABLE


def test_table2_and_table3(benchmark):
    data = run_experiment(benchmark, "tab02")
    rendered = data.render()
    emit("Tables 2 & 3: rate table and operating modes", rendered)

    # Paper rows, verbatim.
    assert "18 Mbps" in rendered
    assert data.n_rates == len(RATE_TABLE) == 8
    assert data.n_prototype == len(RATE_TABLE.prototype_subset()) == 6
    assert data.max_mbps == 54.0
    assert MODES["simulation"].symbol_time == 8e-6
    assert MODES["long_range"].n_subcarriers == 1024
