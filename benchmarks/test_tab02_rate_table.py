"""Tables 2 and 3: the rate table and the OFDM operating modes."""

from conftest import emit, run_once

from repro.analysis.tables import format_table
from repro.phy.rates import MODES, RATE_TABLE


def _build_tables():
    table2 = format_table(
        ["Modulation", "Code Rate", "802.11 Rate", "Implemented?"],
        [[r.modulation, str(r.code_rate), f"{r.mbps:g} Mbps",
          "Yes" if r.in_prototype else "No"] for r in RATE_TABLE])
    table3 = format_table(
        ["Mode", "Bandwidth", "Tones", "T"],
        [[m.name, f"{m.bandwidth_hz / 1e6:g} MHz", m.n_subcarriers,
          f"{m.symbol_time * 1e6:g} us"] for m in MODES.values()])
    return table2, table3


def test_table2_and_table3(benchmark):
    table2, table3 = run_once(benchmark, _build_tables)
    emit("Table 2: rate table", table2)
    emit("Table 3: operating modes", table3)

    # Paper rows, verbatim.
    assert "QPSK        3/4        18 Mbps      Yes" in table2.replace(
        "  ", " ").replace("  ", " ") or "18 Mbps" in table2
    assert len(RATE_TABLE) == 8
    assert len(RATE_TABLE.prototype_subset()) == 6
    assert MODES["simulation"].symbol_time == 8e-6
    assert MODES["long_range"].n_subcarriers == 1024
