"""Extension: error recovery protocols over the bit-exact PHY.

The paper argues (section 3.3) that SoftRate composes with any error
recovery scheme because BER is a sufficient statistic for all of them;
this extension implements the three recovery styles it names and
measures their goodput across the SNR waterfall.

Expected shape: at comfortable SNR all three cost one round (IR
slightly leaner — its retransmission unit is parity, not frames); in
the marginal band, PPR and IR sustain delivery where whole-frame ARQ
burns airtime on full retransmissions; far below the waterfall,
everything fails.
"""

import numpy as np
from conftest import emit, run_once

from repro.analysis.tables import format_table
from repro.channel.awgn import apply_channel, noise_var_for_snr_db
from repro.phy.transceiver import Transceiver
from repro.recovery import (FrameArqProtocol,
                            IncrementalRedundancyProtocol, PprProtocol)

SNRS = (3.5, 4.0, 5.0, 7.0)
TRIALS = 6


def _channel(snr_db, seed):
    rng = np.random.default_rng(seed)

    def apply_fn(tx_symbols, round_index):
        gains = np.ones(tx_symbols.shape[0], dtype=complex)
        return apply_channel(tx_symbols, gains,
                             noise_var_for_snr_db(snr_db), rng)

    return apply_fn


def _sweep():
    phy = Transceiver()
    rng = np.random.default_rng(1)
    payload = rng.integers(0, 2, 1024).astype(np.uint8)
    protocols = [FrameArqProtocol, PprProtocol,
                 IncrementalRedundancyProtocol]
    results = {}
    for snr in SNRS:
        for cls in protocols:
            delivered, goodputs = 0, []
            for trial in range(TRIALS):
                proto = cls(phy, _channel(snr, 1000 + trial))
                outcome = proto.deliver(payload, rate_index=3)
                delivered += outcome.delivered
                goodputs.append(outcome.goodput_bps / 1e6)
            results[(snr, cls.name)] = (delivered / TRIALS,
                                        float(np.mean(goodputs)))
    return results


def test_extension_recovery_protocols(benchmark):
    results = run_once(benchmark, _sweep)

    rows = []
    for snr in SNRS:
        for name in ("frame-ARQ", "PPR", "IR"):
            rate, goodput = results[(snr, name)]
            rows.append([f"{snr}", name, f"{rate:.0%}",
                         f"{goodput:.1f}"])
    emit("Extension: recovery protocols (QPSK 3/4 over AWGN)",
         format_table(["SNR (dB)", "protocol", "delivered",
                       "goodput (Mbps)"], rows))

    # Marginal band: partial/incremental recovery beats whole-frame
    # retransmission.
    marginal = 4.0
    arq = results[(marginal, "frame-ARQ")]
    ppr = results[(marginal, "PPR")]
    ir = results[(marginal, "IR")]
    assert ppr[0] >= arq[0]
    assert ir[0] >= arq[0]
    assert ppr[1] > arq[1]
    assert ir[1] > arq[1]
    # Comfortable SNR: everyone delivers everything.
    for name in ("frame-ARQ", "PPR", "IR"):
        assert results[(7.0, name)][0] == 1.0
