"""Fig. 15: convergence of frame-level protocols after a channel step.

Expected shape (paper): after the optimal rate steps between QAM16 3/4
and QAM16 1/2, RRAA re-converges within tens of milliseconds (15-85 ms
measured by the paper), SampleRate within hundreds (600-650 ms), RRAA's
choice wobbles even in steady state, and SoftRate (shown for contrast)
converges within a frame or two.
"""

import numpy as np
from conftest import emit, run_once

from repro.analysis.tables import format_table
from repro.experiments.api import run


def _median_ms(values):
    return float(np.median(values)) * 1e3 if values else float("nan")


def _run_all():
    results = {}
    for name, protocol in [("SoftRate", "softrate"),
                           ("RRAA", "rraa"),
                           ("SampleRate", "samplerate")]:
        results[name] = run("fig15", protocol=protocol).raw
    return results


def test_fig15_convergence(benchmark):
    results = run_once(benchmark, _run_all)

    rows = []
    summary = {}
    for name, res in results.items():
        ct = res.convergence_times()
        to_bad = _median_ms(ct["to_bad"])
        to_good = _median_ms(ct["to_good"])
        instability = res.instability()
        summary[name] = (to_bad, to_good, instability)
        rows.append([name, f"{to_bad:.1f}", f"{to_good:.1f}",
                     f"{instability:.1f}"])
    emit("Fig. 15: convergence after a channel step",
         format_table(["algorithm", "to lower rate (ms)",
                       "to higher rate (ms)", "rate switches/s"],
                      rows))

    soft_bad, soft_good, soft_wobble = summary["SoftRate"]
    rraa_bad, rraa_good, rraa_wobble = summary["RRAA"]
    sr_bad, sr_good, _sr_wobble = summary["SampleRate"]

    # SoftRate: a frame or two.
    assert soft_bad < 5.0 and soft_good < 5.0
    assert soft_wobble < 5.0
    # RRAA: tens of ms (needs a window of losses), wobbly in steady
    # state (the paper's "instability of RRAA's rate choice").
    assert 1.0 < rraa_bad < 100.0
    assert 1.0 < rraa_good < 200.0
    assert rraa_wobble > 5 * max(soft_wobble, 0.1)
    # SampleRate: hundreds of ms (the averaging window must drain).
    assert sr_bad > 3 * rraa_bad
    assert sr_good > 100.0
    # Ordering: SoftRate << RRAA << SampleRate.
    assert soft_bad < rraa_bad < sr_bad
