"""Ablation: the frequency interleaver under multipath.

Design question (paper section 4): interleaving coded bits onto
non-adjacent subcarriers mitigates frequency-selective fading.
Expected: under a multi-tap channel, the interleaved PHY delivers far
more frames than the non-interleaved one at the same SNR; under flat
fading the two are statistically identical (the permutation is then
irrelevant) — confirming the mechanism rather than a side effect.
"""

import numpy as np
from conftest import emit, run_once

from repro.analysis.tables import format_table
from repro.channel.awgn import apply_channel
from repro.channel.multipath import FrequencySelectiveChannel
from repro.phy.snr import db_to_linear
from repro.phy.transceiver import Transceiver


def _delivery_rate(use_interleaver, selective, n_frames=15,
                   snr_db=13.0):
    rng = np.random.default_rng(7)
    phy = Transceiver(use_interleaver=use_interleaver)
    payload = rng.integers(0, 2, 1600).astype(np.uint8)
    tx = phy.transmit(payload, rate_index=3)
    delivered = 0
    for seed in range(n_frames):
        if selective:
            channel = FrequencySelectiveChannel(
                128, np.random.default_rng(seed + 50), n_taps=10,
                doppler_hz=5.0)
            gains = channel.gains(0.0, tx.layout.n_symbols,
                                  phy.mode.symbol_time)
        else:
            gains = np.ones(tx.layout.n_symbols, dtype=complex)
        rx_sym, g = apply_channel(tx.symbols, gains,
                                  db_to_linear(-snr_db),
                                  np.random.default_rng(seed))
        rx = phy.receive(rx_sym, g, tx.layout, tx_frame=tx)
        delivered += rx.crc_ok
    return delivered / n_frames


def _sweep():
    return {
        ("interleaved", "multipath"): _delivery_rate(True, True),
        ("straight", "multipath"): _delivery_rate(False, True),
        ("interleaved", "flat"): _delivery_rate(True, False),
        ("straight", "flat"): _delivery_rate(False, False),
    }


def test_ablation_interleaver(benchmark):
    results = run_once(benchmark, _sweep)

    rows = [[il, ch, f"{rate:.0%}"]
            for (il, ch), rate in results.items()]
    emit("Ablation: frequency interleaver x channel type "
         "(delivery rate, QPSK 3/4 at 13 dB)",
         format_table(["interleaver", "channel", "delivered"], rows))

    # Under multipath the interleaver is decisive.
    assert results[("interleaved", "multipath")] >= \
        results[("straight", "multipath")] + 0.25
    # Under flat fading it is irrelevant.
    assert abs(results[("interleaved", "flat")]
               - results[("straight", "flat")]) <= 0.15
