"""Throughput benchmark: batched PHY fast path vs per-frame reference.

Decodes the same stack of fig07-style frames (1600-bit payloads, QPSK
3/4, AWGN across the waterfall region) twice — once frame-by-frame
through ``Transceiver.receive`` and once through the batched
``receive_batch`` — and reports frames/sec for both.  The batched path
must be bit-identical (spot-checked here, exhaustively checked in
``tests/phy/test_batch.py``) and at least 3x faster on a 64-frame
batch: the point of batching is that the Python-level trellis loops
run once per batch instead of once per frame.

Set ``REPRO_SMOKE_BENCH=1`` for a seconds-scale smoke run (small batch
and payload, relaxed speedup floor) — used by CI.
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import emit

_SMOKE = os.environ.get("REPRO_SMOKE_BENCH", "") not in ("", "0")

# (n_frames, payload_bits, required speedup)
_N_FRAMES, _PAYLOAD_BITS, _MIN_SPEEDUP = \
    (8, 400, 1.0) if _SMOKE else (64, 1600, 3.0)
_RATE_INDEX = 3                     # QPSK 3/4, the fig07 reference rate
_SNR_RANGE_DB = (4.0, 12.0)         # the rate's waterfall region


def _build_rx_stack(phy, rng):
    """One transmitted frame, _N_FRAMES independent AWGN realisations."""
    from repro.phy.snr import db_to_linear

    payload = rng.integers(0, 2, _PAYLOAD_BITS).astype(np.uint8)
    tx = phy.transmit(payload, rate_index=_RATE_INDEX)
    snrs = np.linspace(*_SNR_RANGE_DB, _N_FRAMES)
    gains = np.ones((_N_FRAMES, tx.layout.n_symbols), complex)
    rx = np.empty((_N_FRAMES, tx.layout.n_symbols,
                   phy.mode.n_subcarriers), complex)
    noise_vars = np.array([db_to_linear(-s) for s in snrs])
    from repro.channel.awgn import apply_channel
    for i in range(_N_FRAMES):
        rx[i], _ = apply_channel(tx.symbols, gains[i],
                                 float(noise_vars[i]), rng)
    return tx, rx, gains


def test_batched_receive_speedup():
    from repro.phy.transceiver import Transceiver

    phy = Transceiver()
    rng = np.random.default_rng(2009)
    tx, rx, gains = _build_rx_stack(phy, rng)

    # Warm every lru_cache / lazy import outside the timed regions.
    phy.receive(rx[0], gains[0], tx.layout, tx_frame=tx)
    phy.receive_batch(rx[:1], gains[:1], tx.layout, tx=tx)

    def best_of(n, fn):
        """Best wall time of ``n`` runs (shields the ratio from one-off
        scheduler noise); returns (seconds, last result)."""
        best, result = float("inf"), None
        for _ in range(n):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
        return best, result

    scalar_s, scalar = best_of(2, lambda: [
        phy.receive(rx[i], gains[i], tx.layout, tx_frame=tx)
        for i in range(_N_FRAMES)])
    batched_s, batched = best_of(2, lambda: phy.receive_batch(
        rx, gains, tx.layout, tx=tx))

    # Bit-identical outputs (the regression suite is the full check).
    for ref, got in zip(scalar, batched):
        assert np.array_equal(ref.llrs, got.llrs)
        assert ref.true_ber == got.true_ber

    scalar_fps = _N_FRAMES / scalar_s
    batched_fps = _N_FRAMES / batched_s
    speedup = batched_fps / scalar_fps
    emit("PHY batch throughput "
         f"({_N_FRAMES} frames, {_PAYLOAD_BITS}-bit payloads"
         f"{', smoke' if _SMOKE else ''})",
         f"per-frame: {scalar_fps:8.1f} frames/s "
         f"({scalar_s * 1e3:7.1f} ms)\n"
         f"batched:   {batched_fps:8.1f} frames/s "
         f"({batched_s * 1e3:7.1f} ms)\n"
         f"speedup:   {speedup:.1f}x")
    assert speedup >= _MIN_SPEEDUP, (
        f"batched path only {speedup:.2f}x the per-frame path "
        f"(required {_MIN_SPEEDUP}x)")
