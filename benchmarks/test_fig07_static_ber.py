"""Fig. 7: SoftPHY-based vs SNR-based BER estimation, static channel.

Expected shape: panel (a) — the per-frame SoftPHY estimate tracks
ground truth along the diagonal with sub-decade error; panel (b) —
aggregating bits per bin extends the agreement to BERs far below the
per-frame measurement limit; panel (c) — at a fixed SNR the true BER
spreads widely (SNR is an unreliable predictor).
"""

import numpy as np
from conftest import emit, run_experiment

from repro.analysis.tables import format_table


def test_fig7_static_ber_estimation(benchmark):
    data = run_experiment(benchmark, "fig07", seed=7,
                          frames_per_point=4)

    # Panel (a): per-frame estimate vs truth.
    panel_a = data.panel_a()
    rows_a = [[f"{b.estimate_center:.1e}", f"{b.mean_true:.1e}",
               f"{b.std_true:.1e}", b.n_frames]
              for b in panel_a if b.mean_true > 0]
    emit("Fig. 7(a): per-frame SoftPHY estimate vs true BER",
         format_table(["estimate bin", "mean true", "std", "frames"],
                      rows_a))
    # Diagonal agreement within a factor of 3 wherever truth is
    # measurable per-frame.
    for b in panel_a:
        if b.mean_true > 3e-3 and b.n_frames >= 5:
            assert 1 / 3 < b.estimate_center / b.mean_true < 3.0
    assert data.estimator_error_decades() < 0.25

    # Panel (b): aggregation resolves low BERs.
    panel_b = data.panel_b()
    rows_b = [[f"{c:.1e}", f"{t:.1e}", n] for c, t, n in panel_b]
    emit("Fig. 7(b): aggregated-bits estimate vs true BER",
         format_table(["estimate bin", "aggregated true", "bits"],
                      rows_b))
    resolved = [(c, t) for c, t, n in panel_b
                if 1e-5 < c < 1e-2 and t > 0]
    assert resolved, "aggregation should resolve sub-frame BERs"
    for center, truth in resolved:
        assert 0.1 < center / truth < 10.0

    # Panel (c): SNR against true BER has wide spread per bin.
    panel_c = data.panel_c(rate_index=3)
    rows_c = [[f"{snr:.0f}", f"{mean:.1e}", f"{std:.1e}"]
              for snr, mean, std in panel_c]
    emit("Fig. 7(c): true BER vs preamble SNR (QPSK 3/4)",
         format_table(["SNR bin (dB)", "mean true BER", "std"], rows_c))
    # In the waterfall region the std is comparable to the mean —
    # i.e., an SNR reading pins the BER to no better than ~an order
    # of magnitude.
    waterfall = [(m, s) for _snr, m, s in panel_c if 1e-3 < m < 0.3]
    assert waterfall
    assert any(s > 0.3 * m for m, s in waterfall)
