"""End-to-end frames/sec: surrogate vs full PHY backend.

Runs the same trace-driven end-to-end simulation — a saturated TCP
uplink through the Fig. 12 topology (eventsim + CSMA/CA MAC +
collision-geometry channel + TCP) — with frame fates computed per
transmission by each PHY backend, and compares wall-clock frames/sec.

The full backend BCJR-decodes every 1400-byte data frame (~hundreds
of milliseconds each), so it simulates a token slice of virtual time;
the surrogate must beat it by **at least 10x** frames/sec (acceptance
criterion; measured ~1000x).  This is the lever that makes
million-frame scenario sweeps feasible.

Set ``REPRO_SMOKE_BENCH=1`` for a seconds-scale smoke run — used by
CI.
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import emit

_SMOKE = os.environ.get("REPRO_SMOKE_BENCH", "") not in ("", "0")

#: Virtual seconds simulated per backend (the full backend pays
#: ~0.3-0.5 s of wall time per 11232-bit frame, so its slice is tiny).
_FULL_DURATION = 0.02 if _SMOKE else 0.04
_SURROGATE_DURATION = 0.3 if _SMOKE else 2.0
_MIN_SPEEDUP = 10.0


def _run(phy_backend, duration):
    """One saturated-TCP run; returns (frames concluded, wall secs)."""
    from repro.experiments.common import softrate_factory
    from repro.sim.topology import run_tcp_uplink
    from repro.traces.workloads import walking_traces

    uplinks = walking_traces(1, seed=5)
    downlinks = walking_traces(1, seed=55)
    start = time.perf_counter()
    result = run_tcp_uplink(uplinks, downlinks, softrate_factory,
                            n_clients=1, duration=duration, seed=3,
                            phy_backend=phy_backend)
    wall = time.perf_counter() - start
    frames = sum(len(log) for log in result.frame_logs.values())
    return frames, wall


def test_surrogate_end_to_end_speedup():
    full_frames, full_wall = _run("full", _FULL_DURATION)
    sur_frames, sur_wall = _run("surrogate", _SURROGATE_DURATION)
    assert full_frames > 0 and sur_frames > 0

    full_fps = full_frames / full_wall
    sur_fps = sur_frames / sur_wall
    speedup = sur_fps / full_fps
    emit("surrogate end-to-end throughput"
         f"{' (smoke)' if _SMOKE else ''}",
         f"full:      {full_fps:8.1f} frames/s "
         f"({full_frames} frames / {full_wall:.2f} s wall)\n"
         f"surrogate: {sur_fps:8.1f} frames/s "
         f"({sur_frames} frames / {sur_wall:.2f} s wall)\n"
         f"speedup:   {speedup:.0f}x")
    assert speedup >= _MIN_SPEEDUP, (
        f"surrogate only {speedup:.1f}x the full backend "
        f"(required {_MIN_SPEEDUP}x)")


def test_surrogate_tracks_trace_driven_throughput():
    """Sanity anchor: the surrogate's TCP throughput lands in the
    same regime as the default precomputed-trace simulation (they are
    different channel models — calibrated full-PHY response vs the
    impairment-calibrated analytic trace columns — so only a loose
    band is asserted)."""
    from repro.experiments.common import softrate_factory
    from repro.sim.topology import run_tcp_uplink
    from repro.traces.workloads import walking_traces

    duration = 0.3 if _SMOKE else 1.0
    uplinks = walking_traces(1, seed=5)
    downlinks = walking_traces(1, seed=55)
    results = {}
    for backend in (None, "surrogate"):
        results[backend] = run_tcp_uplink(
            uplinks, downlinks, softrate_factory, n_clients=1,
            duration=duration, seed=3,
            phy_backend=backend).aggregate_mbps
    emit("surrogate vs trace-driven TCP throughput",
         f"trace columns: {results[None]:.2f} Mbps\n"
         f"surrogate:     {results['surrogate']:.2f} Mbps")
    assert results["surrogate"] > 0.25 * results[None]
    assert results["surrogate"] < 4.0 * results[None]
