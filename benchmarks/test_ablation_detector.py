"""Ablation: the interference detector's jump threshold.

Design question (DESIGN.md): the decades threshold trades detection
accuracy against false positives.  Expected: lowering it raises both;
raising it lowers both; the default (1.0 decade) sits at >=80%
detection with a small FP rate.
"""

from conftest import emit, run_once

from repro.analysis.tables import format_table
from repro.core.interference import InterferenceDetector
from repro.experiments.fig10_interference import (run_false_positives,
                                                  run_fig10)

THRESHOLDS = (0.5, 1.0, 2.0)


def _sweep():
    out = {}
    for decades in THRESHOLDS:
        detector = InterferenceDetector(jump_decades=decades)
        by_power, _by_rate = run_fig10(
            seed=10, n_frames=15, rel_powers_db=[0.0, -4.0],
            rate_indices=[3], detector=detector)
        detected = sum(a.detected for a in by_power.values())
        errored = sum(a.errored_frames for a in by_power.values())
        fp, fp_total = run_false_positives(seed=11, n_frames=25,
                                           detector=detector)
        out[decades] = (detected / max(errored, 1), fp / fp_total)
    return out


def test_ablation_detector_threshold(benchmark):
    results = run_once(benchmark, _sweep)

    rows = [[f"{thr}", f"{det:.0%}", f"{fp:.0%}"]
            for thr, (det, fp) in results.items()]
    emit("Ablation: detector jump threshold (decades)",
         format_table(["threshold", "detection", "false positives"],
                      rows))

    detections = [results[t][0] for t in THRESHOLDS]
    false_pos = [results[t][1] for t in THRESHOLDS]
    # Both rates decrease (weakly) as the threshold rises.
    assert detections[0] >= detections[-1]
    assert false_pos[0] >= false_pos[-1]
    # The default threshold achieves the paper's >=80% detection.
    assert results[1.0][0] >= 0.75
    assert results[1.0][1] <= 0.35
