"""Figs. 8 & 9: BER estimation in mobile channels.

Expected shape: the SoftPHY estimate-vs-truth curve is the same at
walking (40 Hz) and vehicular (400 Hz) Doppler — mobility-invariant —
while the SNR-vs-truth curve shifts between the two speeds, which is
why SNR protocols need per-environment retraining.
"""

from conftest import emit, run_experiment

from repro.analysis.tables import format_table


def test_fig8_fig9_mobile_ber(benchmark):
    data = run_experiment(benchmark, "fig08", seed=8, n_frames=60)

    rows = []
    for label in data.doppler_hz:
        for b in data.softphy_curve(label):
            rows.append([label, f"{b.estimate_center:.1e}",
                         f"{b.mean_true:.1e}", b.n_frames])
    emit("Fig. 8: SoftPHY estimate vs truth per mobility speed",
         format_table(["speed", "estimate bin", "mean true", "frames"],
                      rows))

    rows9 = []
    for label in data.doppler_hz:
        for snr, mean in data.snr_curve(label):
            rows9.append([label, f"{snr:.0f}", f"{mean:.1e}"])
    emit("Fig. 9: true BER vs preamble SNR per mobility speed",
         format_table(["speed", "SNR bin (dB)", "mean true BER"],
                      rows9))

    softphy_gap = data.curve_divergence("walking", "vehicular",
                                        "softphy")
    snr_gap = data.curve_divergence("walking", "vehicular", "snr")
    emit("Divergence between speeds",
         format_table(["curve", "mean |log10 BER| gap (decades)"],
                      [["SoftPHY (Fig. 8)", f"{softphy_gap:.2f}"],
                       ["SNR (Fig. 9)", f"{snr_gap:.2f}"]]))

    # The SoftPHY curve is mobility-invariant; the SNR curve is not.
    assert softphy_gap < 0.5
    assert snr_gap == snr_gap, "SNR curves must overlap in some bins"
    assert snr_gap > softphy_gap
