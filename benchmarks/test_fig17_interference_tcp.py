"""Figs. 17 & 18: TCP throughput in interference-dominated channels.

Expected shape (paper section 6.4): RRAA collapses under hidden-
terminal collisions (it reacts to short-term loss, so collisions drag
its rate down; adaptive RTS flaps without helping); SampleRate is more
resilient (long window); SoftRate matches or beats SampleRate with the
present detector and does best with the ideal detector+postambles; and
at Pr[CS] = 0.8 RRAA visibly underselects (Fig. 18).
"""

from conftest import emit, run_experiment

from repro.analysis.tables import format_table

CS_PROBS = (0.0, 0.4, 0.8, 1.0)


def test_fig17_fig18_interference(benchmark):
    result = run_experiment(benchmark, "fig17",
                            cs_probabilities=CS_PROBS,
                            duration=3.0, seeds=(1, 2))

    headers = ["algorithm"] + [f"cs={c}" for c in CS_PROBS]
    rows = [[name] + [f"{v:.2f}" for v in vals]
            for name, vals in result.throughput_mbps.items()]
    emit("Fig. 17: aggregate TCP throughput vs carrier-sense "
         "probability", format_table(headers, rows))
    rows18 = [[name, f"{a.overselect:.2f}", f"{a.accurate:.2f}",
               f"{a.underselect:.2f}"]
              for name, a in result.accuracy_at.items()]
    emit(f"Fig. 18: rate selection accuracy at cs={result.accuracy_cs}",
         format_table(["algorithm", "over", "accurate", "under"],
                      rows18))

    tput = result.throughput_mbps
    ideal = tput["SoftRate (Ideal)"]
    present = tput["SoftRate"]
    rraa = tput["RRAA"]
    sample = tput["SampleRate"]

    import numpy as np
    # RRAA is the worst-affected protocol across the sweep (individual
    # mid-sweep points carry seed noise; the paper's claim is about the
    # interference-dominated regime).
    assert np.mean(rraa) < np.mean(present)
    assert np.mean(rraa) < np.mean(ideal)
    for i in range(len(CS_PROBS)):
        # SoftRate variants stay serviceable even with no carrier
        # sense at all (collision losses do not drag the rate down).
        assert present[i] > 0.5 * present[-1], i
    # Under heavy interference the ideal detector+postambles variant
    # leads every frame-level protocol, and the present detector
    # matches or beats SampleRate — the paper's per-variant claims.
    # (Our SampleRate underperforms across the board — see
    # EXPERIMENTS.md; and with correctly frozen backoff counters and
    # the strict retry cap, the present-detector gap to RRAA at
    # Pr[CS]=0 narrows to a wash, so RRAA dominance is asserted
    # pointwise only for the ideal variant and on sweep means above.)
    assert ideal[0] > 1.1 * rraa[0]
    assert ideal[0] > max(rraa[0], sample[0])
    assert ideal[0] >= present[0]
    assert present[0] > 1.3 * sample[0]
    assert present[0] > 0.9 * rraa[0]

    # Fig. 18: RRAA underselects much more than SoftRate.
    acc = result.accuracy_at
    assert acc["RRAA"].underselect > \
        acc["SoftRate"].underselect + 0.1
    assert acc["SoftRate (Ideal)"].accurate >= 0.4
