"""Fig. 16: TCP throughput in simulated fast-fading channels.

Expected shape (paper section 6.3): normalised by omniscient, SoftRate
stays roughly flat across coherence times without retraining; the SNR
protocol trained on walking traces (i.e. untrained for these channels)
collapses as coherence time shrinks — up to ~4x below SoftRate at
100 us; the frame-level protocols degrade but are not
coherence-sensitive in the same catastrophic way.
"""

from conftest import emit, run_experiment

from repro.analysis.tables import format_table

COHERENCE = (1e-3, 500e-6, 200e-6, 100e-6)


def test_fig16_fast_fading(benchmark):
    result = run_experiment(benchmark, "fig16",
                            coherence_times=COHERENCE,
                            duration=3.0, seeds=(1,))

    headers = ["algorithm"] + [f"{c * 1e6:.0f} us" for c in COHERENCE]
    rows = [[name] + [f"{v:.2f}" for v in vals]
            for name, vals in result.normalized.items()]
    rows.append(["omniscient (Mbps)"]
                + [f"{m:.1f}" for m in result.omniscient_mbps])
    emit("Fig. 16: TCP throughput normalised by omniscient",
         format_table(headers, rows))

    soft = result.normalized["SoftRate"]
    snr = result.normalized["SNR (untrained)"]
    rraa = result.normalized["RRAA"]
    sample = result.normalized["SampleRate"]

    # SoftRate works across all coherence times without retraining.
    assert min(soft) > 0.3
    # The untrained SNR protocol collapses at short coherence: at
    # 100 us SoftRate is >= 4x better (the paper's headline factor).
    assert snr[0] > 0.5                      # fine at 1 ms
    assert soft[-1] > 4.0 * max(snr[-1], 1e-6)
    assert snr[-1] < 0.2
    # SoftRate leads everyone at every coherence time.
    for i in range(len(COHERENCE)):
        assert soft[i] >= max(snr[i], rraa[i], sample[i]) - 0.05, i
    # Frame-level protocols degrade but do not show the SNR protocol's
    # coherence-driven collapse pattern at the shortest coherence.
    assert rraa[-1] > snr[-1]
