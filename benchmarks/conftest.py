"""Shared benchmark plumbing.

Every benchmark regenerates one table or figure of the paper, prints
the rows/series the paper reports (visible with ``pytest -s`` and in
the captured output), and asserts the qualitative *shape* — who wins,
by roughly what factor, where crossovers fall.  Absolute numbers are
not expected to match the authors' testbed (see EXPERIMENTS.md).

Benchmarks run each experiment exactly once (``rounds=1``): the
measured quantity is the experiment's wall time, and the printed table
is its scientific output.
"""

from __future__ import annotations

import sys


def emit(title: str, body: str) -> None:
    """Print a labelled result block (shown with -s / on failure)."""
    print(f"\n=== {title} ===", file=sys.stderr)
    print(body, file=sys.stderr)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def run_experiment(benchmark, name, **overrides):
    """Run a registered experiment once through the unified registry.

    Returns the experiment's native result object (``.raw``), so the
    benchmark's shape assertions read exactly as before the registry
    existed.
    """
    from repro.experiments.api import run

    return run_once(benchmark, run, name, **overrides).raw
