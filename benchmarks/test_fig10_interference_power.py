"""Figs. 10 & 11: interference detection accuracy.

Expected shape: across relative interferer powers (0 to -4 dB) and
across the sender's bit rates, more than ~80% of frames received with
bit errors are identified as collisions (paper: "always identify more
than 80%"); weak interferers (-8, -15 dB) barely cause errors at all;
and fading-only losses are rarely misflagged (paper <1%; ours a few
percent — see EXPERIMENTS.md for why).
"""

import numpy as np
from conftest import emit, run_once

from repro.analysis.tables import format_table
from repro.experiments.api import run
from repro.experiments.fig10_interference import run_false_positives


def _run_all():
    by_power, by_rate = run("fig10", seed=10, n_frames=25).raw
    fp_walk = run_false_positives(seed=11, n_frames=40,
                                  doppler_hz=40.0)
    return by_power, by_rate, fp_walk


def test_fig10_fig11_interference_detection(benchmark):
    by_power, by_rate, (fp, errored) = run_once(benchmark, _run_all)

    rows = [[f"{rel:+.0f}", acc.errored_frames,
             f"{acc.accuracy:.0%}" if acc.errored_frames else "-",
             acc.clean_frames]
            for rel, acc in by_power.items()]
    emit("Fig. 10: detection accuracy vs relative interferer power",
         format_table(["power (dB)", "errored", "accuracy", "clean"],
                      rows))
    rows11 = [[f"rate {ri}", acc.errored_frames,
               f"{acc.accuracy:.0%}" if acc.errored_frames else "-"]
              for ri, acc in by_rate.items()]
    emit("Fig. 11: detection accuracy vs sender bit rate",
         format_table(["rate", "errored", "accuracy"], rows11))
    emit("Section 5.3 false positives",
         f"{fp}/{errored} fading-only losses flagged as collisions")

    # Strong interferers: errored frames flagged >= 80%.
    for rel in (0.0, -2.0):
        acc = by_power[rel]
        assert acc.errored_frames >= 10
        assert acc.accuracy >= 0.7
    # Weak interferers rarely corrupt frames at all.
    assert by_power[-15.0].errored_frames <= 2
    # Across bit rates, strong interference is detected most of the
    # time (mid/high rates >= 80%, robust rates may be lower since the
    # code corrects much of the interference).
    accs = [a.accuracy for a in by_rate.values() if a.errored_frames]
    assert np.mean(accs) >= 0.6
    assert max(accs) >= 0.8
    # False positives stay a small minority.
    assert fp / errored < 0.3
