"""Ablation: exact log-MAP vs max-log-MAP BCJR.

Design question (DESIGN.md): how much hint quality does the cheaper
max-log recursion give up?  Expected: identical hard decisions almost
everywhere, a modest speedup, slightly optimistic hint magnitudes —
i.e. max-log is a safe deployment choice.
"""

import time

import numpy as np
from conftest import emit, run_once

from repro.analysis.tables import format_table
from repro.channel.awgn import apply_channel
from repro.core.hints import frame_ber_estimate
from repro.phy.snr import db_to_linear
from repro.phy.transceiver import Transceiver


def _run_variant(variant, n_frames=12, snr_db=4.5):
    rng = np.random.default_rng(99)
    phy = Transceiver(decoder_variant=variant)
    payload = rng.integers(0, 2, 1600).astype(np.uint8)
    tx = phy.transmit(payload, rate_index=3)
    estimates, truths = [], []
    start = time.perf_counter()
    for _ in range(n_frames):
        gains = np.ones(tx.layout.n_symbols, dtype=complex)
        rx_sym, g = apply_channel(tx.symbols, gains,
                                  db_to_linear(-snr_db), rng)
        rx = phy.receive(rx_sym, g, tx.layout, tx_frame=tx)
        estimates.append(frame_ber_estimate(rx.hints))
        truths.append(rx.true_ber)
    elapsed = time.perf_counter() - start
    return (float(np.mean(estimates)), float(np.mean(truths)),
            elapsed / n_frames)


def _run_both():
    return {variant: _run_variant(variant)
            for variant in ("log-map", "max-log-map")}


def test_ablation_decoder_variant(benchmark):
    results = run_once(benchmark, _run_both)

    rows = [[variant, f"{est:.2e}", f"{true:.2e}", f"{ms * 1e3:.1f}"]
            for variant, (est, true, ms) in results.items()]
    emit("Ablation: BCJR variant (QPSK 3/4 at 4.5 dB)",
         format_table(["variant", "est BER", "true BER", "ms/frame"],
                      rows))

    exact_est, exact_true, exact_ms = results["log-map"]
    approx_est, approx_true, approx_ms = results["max-log-map"]
    # Same channel: identical ground truth by construction of seeds is
    # not guaranteed (different noise draws), but the averages must
    # agree within sampling error.
    assert 0.3 < exact_true / max(approx_true, 1e-9) < 3.0
    # Both estimators track the truth.
    assert 0.25 < exact_est / exact_true < 4.0
    assert 0.25 < approx_est / approx_true < 4.0
    # max-log is not slower.
    assert approx_ms < exact_ms * 1.2
