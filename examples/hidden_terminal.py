#!/usr/bin/env python3
"""Hidden-terminal scenario: why collisions must not lower the rate.

Two clients that cannot carrier-sense each other upload TCP through an
access point over a *static* channel (the paper's section 6.4 setup).
A protocol that reacts to raw loss (RRAA) drags its bit rate down on
every collision — lengthening frames and making contention worse —
while SoftRate's interference detector feeds back the collision-free
channel BER and holds the right rate.

Run:  python examples/hidden_terminal.py
"""

from repro.experiments.common import (rraa_factory, samplerate_factory,
                                      softrate_factory)
from repro.sim.topology import run_tcp_uplink
from repro.traces.workloads import static_short_range_traces

N_CLIENTS = 2
DURATION = 4.0


def main():
    up = static_short_range_traces(N_CLIENTS, mean_snr_db=16.0,
                                   seed=100)
    down = static_short_range_traces(N_CLIENTS, mean_snr_db=16.0,
                                     seed=200)
    protocols = [
        ("SoftRate", softrate_factory, {}),
        ("SoftRate (ideal det.)", softrate_factory,
         {"detect_prob": 1.0, "use_postambles": True}),
        ("RRAA", rraa_factory, {}),
        ("SampleRate", samplerate_factory, {}),
    ]
    print(f"{N_CLIENTS} uploading clients, static channel, "
          f"{DURATION:.0f} s TCP per run\n")
    print(f"{'protocol':22s} {'hidden':>9s} {'perfect CS':>11s}")
    for name, factory, kwargs in protocols:
        row = []
        for cs_prob in (0.0, 1.0):
            result = run_tcp_uplink(
                up, down, factory, n_clients=N_CLIENTS,
                duration=DURATION, carrier_sense_prob=cs_prob,
                seed=7, **kwargs)
            row.append(result.aggregate_mbps)
        print(f"{name:22s} {row[0]:7.2f} Mb {row[1]:9.2f} Mb")
    print("\n'hidden' = the clients never sense each other "
          "(every overlap collides).")


if __name__ == "__main__":
    main()
