#!/usr/bin/env python3
"""Quickstart: one frame through the PHY, SoftPHY hints, and the
BER estimate — the paper's core idea in thirty lines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Transceiver, apply_channel
from repro.core import frame_ber_estimate
from repro.phy.snr import db_to_linear


def main():
    rng = np.random.default_rng(2009)
    phy = Transceiver()                      # 802.11a/g-like OFDM PHY
    payload = rng.integers(0, 2, 1600).astype(np.uint8)

    print("rate        SNR   delivered  true BER   SoftPHY estimate")
    for rate_index in range(len(phy.rates)):
        rate = phy.rates[rate_index]
        for snr_db in (6.0, 10.0, 14.0):
            tx = phy.transmit(payload, rate_index=rate_index)
            gains = np.ones(tx.layout.n_symbols, dtype=complex)
            rx_symbols, gains = apply_channel(
                tx.symbols, gains, db_to_linear(-snr_db), rng)
            rx = phy.receive(rx_symbols, gains, tx.layout, tx_frame=tx)

            # The receiver estimates the channel BER from the decoder's
            # per-bit confidences — even when the frame has no errors.
            estimate = frame_ber_estimate(rx.hints)
            print(f"{rate.name:10s}  {snr_db:4.1f}  {str(rx.crc_ok):9s}"
                  f"  {rx.true_ber:9.2e}  {estimate:9.2e}")


if __name__ == "__main__":
    main()
