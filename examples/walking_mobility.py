#!/usr/bin/env python3
"""Walking-mobility scenario: SoftRate vs baselines over a fading link.

Reproduces the flavour of the paper's section 6.2 headline at small
scale: a sender walks away from its receiver (large-scale decay plus
multipath fades at 40 Hz Doppler) while a saturated link-layer sender
adapts its bit rate.  Prints per-protocol goodput and rate-selection
accuracy.

Run:  python examples/walking_mobility.py
"""

import numpy as np

from repro.channel.mobility import WalkingTrajectory
from repro.core.feedback import Feedback
from repro.experiments.common import (omniscient_factory, rraa_factory,
                                      samplerate_factory,
                                      snr_trained_factory,
                                      softrate_factory)
from repro.phy.rates import RATE_TABLE
from repro.sim.topology import make_airtime_fn
from repro.traces.generate import generate_fading_trace

PAYLOAD_BITS = 11200
RATES = RATE_TABLE.prototype_subset()


def run_protocol(adapter, trace, duration=10.0):
    """Saturated link-level loop over the trace."""
    airtime = make_airtime_fn(RATES)
    t, delivered_bits = 0.0, 0
    over = accurate = under = 0
    while t < duration:
        rate = adapter.choose_rate(t)
        best = trace.best_rate_at(t)
        if best is not None:
            over += rate > best
            accurate += rate == best
            under += rate < best
        observation = trace.observe(t, rate)
        frame_time = airtime(PAYLOAD_BITS, rate)
        if observation.detected:
            feedback = Feedback(src=1, dest=0, seq=0,
                                ber=observation.ber_est,
                                frame_ok=observation.delivered,
                                snr_db=observation.snr_db)
            adapter.on_feedback(t, rate, feedback, frame_time)
            if observation.delivered:
                delivered_bits += PAYLOAD_BITS
        else:
            adapter.on_silent_loss(t, rate, frame_time)
        t += frame_time + 80e-6          # DIFS + backoff + feedback
    total = max(over + accurate + under, 1)
    return (delivered_bits / duration / 1e6,
            over / total, accurate / total, under / total)


def main():
    rng = np.random.default_rng(42)
    trajectory = WalkingTrajectory(rng, start_distance=5.0)
    print("Generating the walking trace (10 s, 40 Hz Doppler)...")
    trace = generate_fading_trace(rng, duration=10.0,
                                  mean_snr_db=trajectory.mean_snr_db,
                                  doppler_hz=40.0)

    protocols = [
        ("Omniscient", omniscient_factory),
        ("SoftRate", softrate_factory),
        ("SNR (trained)", snr_trained_factory(trace)),
        ("RRAA", rraa_factory),
        ("SampleRate", samplerate_factory),
    ]
    print(f"\n{'protocol':14s} {'goodput':>9s}  {'over':>5s} "
          f"{'accurate':>8s} {'under':>6s}")
    for name, factory in protocols:
        adapter = factory(RATES, trace)
        goodput, over, accurate, under = run_protocol(adapter, trace)
        print(f"{name:14s} {goodput:7.2f} Mb  {over:5.0%} "
              f"{accurate:8.0%} {under:6.0%}")


if __name__ == "__main__":
    main()
