#!/usr/bin/env python3
"""SoftPHY BER estimation study (the paper's Fig. 7 in miniature).

Sends frames across an AWGN channel at a grid of SNRs, collects the
per-frame SoftPHY BER estimate and the ground truth, and prints the
binned comparison — the property the whole SoftRate design rests on:
the estimate tracks the truth, including for frames with *zero*
errors, and aggregating bits resolves BERs far below what one frame
can measure.

Run:  python examples/softphy_ber_estimation.py
"""

import numpy as np

from repro.experiments.fig07_static import run_fig7


def main():
    print("Running the static BER-estimation experiment "
          "(bit-exact PHY)...")
    data = run_fig7(seed=7, frames_per_point=3,
                    snr_grid_db=np.arange(0.0, 19.0, 2.0))

    print(f"\n{len(data.estimates)} frames; median estimator error on "
          f"errored frames: {data.estimator_error_decades():.2f} "
          f"decades (paper: < 0.1)\n")

    print("Per-frame comparison (Fig. 7a):")
    print(f"{'estimate bin':>13s} {'mean true BER':>14s} {'frames':>7s}")
    for b in data.panel_a(decades_per_bin=0.5):
        print(f"{b.estimate_center:13.1e} {b.mean_true:14.1e} "
              f"{b.n_frames:7d}")

    print("\nAggregated bits per bin (Fig. 7b) — resolving BERs no "
          "single frame could measure:")
    print(f"{'estimate bin':>13s} {'aggregated true':>16s} "
          f"{'bits':>10s}")
    for center, truth, bits in data.panel_b():
        if center < 1e-1:
            print(f"{center:13.1e} {truth:16.1e} {bits:10d}")

    print("\nSNR as a predictor (Fig. 7c, QPSK 3/4) — note the spread:")
    print(f"{'SNR bin':>8s} {'mean true BER':>14s} {'std':>10s}")
    for snr, mean, std in data.panel_c(rate_index=3):
        print(f"{snr:8.1f} {mean:14.1e} {std:10.1e}")


if __name__ == "__main__":
    main()
